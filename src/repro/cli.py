"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list`` — the bioassay suite with op counts;
* ``run`` — execute a bioassay on a sampled chip and print the outcome
  (optionally the wear heatmap); ``--trace``/``--journal``/``--perf``
  switch on the :mod:`repro.obs` telemetry; ``--workers``/``--prefetch``/
  ``--strategy-cache`` enable the parallel synthesis engine
  (:mod:`repro.engine`); ``--engine-retries``/``--engine-deadline-ms``
  bound its fault tolerance and ``--chaos`` injects deterministic faults
  (:mod:`repro.engine.chaos`);
* ``report`` — summarize a run journal written by ``run --journal``
  (``--json`` for machine-readable output, ``--slo`` to gate on
  objectives);
* ``monitor`` — ``run`` with the live telemetry endpoint always on:
  serves OpenMetrics ``/metrics`` and JSON ``/healthz`` while the
  bioassay executes (``--port``, default 9178);
* ``synth`` — synthesize a single routing job and print the route map;
* ``degradation`` — print the D(n)/H(n) lifetime table for given (tau, c).

The live telemetry plane (``--monitor-port`` / ``--snapshot-interval-ms``
/ ``--slo``) is shared between ``run`` and ``monitor``: a monitor
endpoint, a background :class:`~repro.obs.pump.TelemetryPump` journaling
periodic metric snapshots and /proc resource samples, and declarative
SLOs (:mod:`repro.obs.slo`) evaluated at the end of the run — a violated
objective exits 4 (run failures still exit 1).
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

import numpy as np


def _cmd_list(_: argparse.Namespace) -> int:
    from repro.bioassay.library import ALL_BIOASSAYS, EVALUATION_BIOASSAYS

    print(f"{'bioassay':18s} {'MOs':>4s} {'depth':>5s}  role")
    for name, builder in sorted(ALL_BIOASSAYS.items()):
        graph = builder()
        role = "evaluation" if name in EVALUATION_BIOASSAYS else "pattern-study"
        print(f"{name:18s} {len(graph):4d} {graph.depth:5d}  {role}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro import obs, perf
    from repro.analysis.render import render_degradation
    from repro.bioassay.library import ALL_BIOASSAYS
    from repro.bioassay.planner import plan
    from repro.biochip.chip import MedaChip
    from repro.biochip.simulator import MedaSimulator
    from repro.core.baseline import AdaptiveRouter, BaselineRouter
    from repro.core.scheduler import HybridScheduler

    slos = []
    if args.slo:
        from repro.obs.slo import parse_slo

        try:
            slos = [parse_slo(text) for text in args.slo]
        except ValueError as exc:
            print(f"bad --slo spec: {exc}", file=sys.stderr)
            return 2

    if args.file:
        from repro.bioassay.io import load_graph

        base_graph = load_graph(args.file)
    elif args.bioassay in ALL_BIOASSAYS:
        base_graph = ALL_BIOASSAYS[args.bioassay]()
    else:
        print(f"unknown bioassay {args.bioassay!r}; try `repro list`",
              file=sys.stderr)
        return 2
    graph = plan(base_graph, args.width, args.height)
    chip = MedaChip.sample(
        args.width, args.height, np.random.default_rng(args.seed),
        tau_range=(args.tau_min, args.tau_max),
        c_range=(args.c_min, args.c_max),
    )

    if args.chaos is not None:
        from repro.engine import chaos

        try:
            chaos.activate(chaos.parse_spec(args.chaos))
        except ValueError as exc:
            print(f"bad --chaos spec: {exc}", file=sys.stderr)
            return 2

    engine = None
    if args.router == "adaptive" and (
        args.workers != 1 or args.strategy_cache is not None
    ):
        from repro.engine import StrategyStore, SynthesisEngine

        store = None
        if args.strategy_cache is not None:
            store = StrategyStore(
                None if args.strategy_cache == "auto" else args.strategy_cache
            )
        engine = SynthesisEngine(
            workers=args.workers, store=store, prefetch=args.prefetch,
            retries=args.engine_retries, deadline_ms=args.engine_deadline_ms,
            admission_floor=True,
        )
    if args.router == "adaptive":
        router = AdaptiveRouter(engine=engine)
    else:
        router = BaselineRouter(args.width, args.height)

    # Mark metric propagation wanted whenever the telemetry plane is in
    # play, so pool workers ship their metric deltas back even when
    # neither tracing nor a journal is on (e.g. a bare /metrics endpoint).
    want_metrics = (
        args.monitor_port is not None
        or args.snapshot_interval_ms is not None
        or bool(slos)
    )
    tracer, _ = obs.configure(
        tracing=args.trace is not None,
        journal=args.journal,
        metrics=True if want_metrics else None,
    )

    monitor = None
    if args.monitor_port is not None:
        from repro.obs.monitor import MonitorServer

        def _health() -> dict:
            return {
                "bioassay": args.bioassay,
                "router": args.router,
                "workers": args.workers,
                "engine_degraded": bool(
                    engine is not None and engine.degraded
                ),
            }

        monitor = MonitorServer(
            port=args.monitor_port, host=args.monitor_host, health=_health
        )
        try:
            monitor.start()
        except OSError as exc:
            print(f"cannot start monitor endpoint: {exc}", file=sys.stderr)
            obs.shutdown()
            if engine is not None:
                engine.close()
            return 2
        print(f"monitor: {monitor.url}/metrics (OpenMetrics), "
              f"{monitor.url}/healthz")

    pump = None
    if args.snapshot_interval_ms is not None:
        journal = obs.journal()
        if journal is None:
            print("--snapshot-interval-ms needs --journal (snapshots are "
                  "journal events)", file=sys.stderr)
            if monitor is not None:
                monitor.stop()
            obs.shutdown()
            if engine is not None:
                engine.close()
            return 2
        from repro.obs.pump import TelemetryPump

        try:
            pump = TelemetryPump(
                journal,
                interval_s=args.snapshot_interval_ms / 1e3,
                worker_pids=(
                    engine.worker_pids
                    if engine is not None and engine.pooled
                    else None
                ),
            )
        except ValueError as exc:
            print(f"bad --snapshot-interval-ms: {exc}", file=sys.stderr)
            if monitor is not None:
                monitor.stop()
            obs.shutdown()
            if engine is not None:
                engine.close()
            return 2
        pump.start()

    total_failures = 0
    slo_results = None
    cleaned = {"engine": False, "pump": False}

    def _close_engine() -> None:
        if engine is None or cleaned["engine"]:
            return
        cleaned["engine"] = True
        engine.close()
        if engine.degraded:
            print("engine: worker pool degraded mid-run; finished on "
                  "the synchronous path", file=sys.stderr)
        if args.perf:
            pairs = ", ".join(
                f"{k}={v}" for k, v in engine.counters().items()
            )
            print(f"engine: {pairs}")

    def _stop_pump() -> None:
        if pump is None or cleaned["pump"]:
            return
        cleaned["pump"] = True
        pump.stop(flush=True)

    try:
        for run_idx in range(args.runs):
            obs.journal_event("cli.run", run=run_idx + 1,
                              bioassay=args.bioassay, router=args.router,
                              seed=args.seed, workers=args.workers)
            if args.wear_level and run_idx:
                # Re-place from scratch against the wear accumulated by the
                # previous runs, steering module slots and ports away from
                # the most-actuated silicon.
                graph = plan(base_graph, args.width, args.height,
                             wear=chip.actuations.copy())
            reconfig = None
            if args.reconfig:
                from repro.reconfig import ReconfigPolicy

                reconfig = ReconfigPolicy(
                    args.width, args.height,
                    wear=chip.actuations.copy() if args.wear_level else None,
                )
            scheduler = HybridScheduler(graph, router, args.width, args.height,
                                        reconfig=reconfig)
            sim = MedaSimulator(chip,
                                np.random.default_rng(args.seed + 1 + run_idx))
            if engine is not None and engine.pooled:
                scheduler.presynthesize(chip.health())
            result = sim.run(scheduler, max_cycles=args.max_cycles)
            status = "ok" if result.success else f"FAILED ({result.failure})"
            extra = f" remaps={scheduler.remaps}" if args.reconfig else ""
            print(f"run {run_idx + 1}: {status:24s} cycles={result.cycles:4d} "
                  f"replans={result.resyntheses}{extra}")
            total_failures += 0 if result.success else 1
        # Orderly teardown before the SLO gate: closing the engine salvages
        # any remaining worker telemetry (merging worker-side metric deltas
        # and spans), and the pump's final flush then journals a snapshot
        # that includes them — so objectives can gate on worker metrics.
        _close_engine()
        _stop_pump()
        if slos:
            from repro.obs.slo import evaluate

            # One-shot evaluation at end of run: the live metric snapshot
            # plus derived run-level values the objectives commonly gate on.
            slo_snapshot = dict(perf.snapshot())
            slo_snapshot["runs"] = float(args.runs)
            slo_snapshot["failures"] = float(total_failures)
            slo_snapshot["completion_probability"] = (
                (args.runs - total_failures) / args.runs if args.runs else 1.0
            )
            slo_results = evaluate(slos, slo_snapshot)
            for result_entry in slo_results:
                obs.journal_event("slo.result", **result_entry.to_record())
    finally:
        _close_engine()
        _stop_pump()
        if monitor is not None:
            monitor.stop()
        if tracer is not None and args.trace is not None:
            spans_path = args.trace + ".spans.jsonl"
            tracer.export_chrome(args.trace)
            tracer.export_jsonl(spans_path)
            print(f"trace: {args.trace} (Chrome/Perfetto), {spans_path} "
                  f"(span JSONL)")
        if args.journal is not None:
            print(f"journal: {args.journal} "
                  f"(summarize with `python -m repro report {args.journal}`)")
        obs.shutdown()
    if args.perf:
        print("\nperf counters:")
        print(perf.report())
    if args.show_wear:
        print("\nchip wear (light = healthy, dense = degraded):")
        print(render_degradation(chip.degradation()))
    exit_code = 1 if total_failures else 0
    if slo_results is not None:
        from repro.obs.slo import format_results

        print("\nSLOs:")
        print(format_results(slo_results))
        if not all(r.ok for r in slo_results) and exit_code == 0:
            exit_code = 4
    return exit_code


def _cmd_report(args: argparse.Namespace) -> int:
    import json

    from repro.obs.journal import read_journal
    from repro.obs.report import (
        format_report,
        sanitize_summary,
        summarize_journal,
    )

    try:
        records = read_journal(args.journal)
    except (OSError, ValueError) as exc:
        print(f"cannot read journal: {exc}", file=sys.stderr)
        return 2
    summary = summarize_journal(records)

    slo_results = None
    if args.slo:
        from repro.obs.slo import evaluate, parse_slo

        try:
            specs = [parse_slo(text) for text in args.slo]
        except ValueError as exc:
            print(f"bad --slo spec: {exc}", file=sys.stderr)
            return 2
        # Evaluate against the last streamed metric snapshot (when the run
        # had a TelemetryPump) plus values derived from the journal itself,
        # so objectives work even on journals without snapshots.
        snapshot = dict(summary["telemetry"]["last_metrics"] or {})
        runs = summary["runs"]
        if runs:
            successes = sum(1 for run in runs if run.get("success"))
            snapshot.setdefault(
                "completion_probability", successes / len(runs)
            )
            snapshot.setdefault("runs", float(len(runs)))
        for stat, value in summary["synthesis_ms"].items():
            if value is not None:
                snapshot.setdefault(f"synthesis_ms.{stat}", value)
        snapshot.setdefault("resyntheses", float(len(summary["resyntheses"])))
        slo_results = evaluate(specs, snapshot)

    if args.json:
        payload = sanitize_summary(summary)
        if slo_results is not None:
            payload["slos"] = sanitize_summary(
                [r.to_record() for r in slo_results]
            )
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(format_report(summary))
        if slo_results is not None:
            from repro.obs.slo import format_results

            print("\nSLOs:")
            print(format_results(slo_results))
    if slo_results is not None and not all(r.ok for r in slo_results):
        return 4
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal
    import threading

    from repro.serve import ServeService

    service = ServeService(
        port=args.port,
        host=args.host,
        serve_workers=args.serve_workers,
        engine_workers=args.workers,
        store_path=args.strategy_cache,
        prefetch=args.prefetch,
        drain_deadline_s=args.drain_deadline,
        journal_path=args.journal,
        engine_retries=args.engine_retries,
        engine_deadline_ms=args.engine_deadline_ms,
    )
    try:
        port = service.start()
    except OSError as exc:
        print(f"cannot start serve endpoint: {exc}", file=sys.stderr)
        return 2
    print(f"serving on {service.url} "
          f"(POST /jobs, GET /jobs/<id>[/events], /metrics, /healthz)")
    print(f"serve workers={args.serve_workers} engine workers={args.workers} "
          f"store={'on' if service.engine.store is not None else 'off'}")

    stop = threading.Event()

    def _signalled(signum: int, _frame: object) -> None:
        print(f"\nreceived {signal.Signals(signum).name}; draining "
              f"(deadline {args.drain_deadline:.0f}s)", file=sys.stderr)
        stop.set()

    previous = {
        sig: signal.signal(sig, _signalled)
        for sig in (signal.SIGINT, signal.SIGTERM)
    }
    try:
        while not stop.wait(0.2):
            pass
        summary = service.drain()
        pairs = ", ".join(f"{k}={v}" for k, v in summary.items())
        print(f"drained: {pairs}")
        return 0 if summary.get("settled") else 3
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
        _ = port


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.serve import ServeClient, ServeError
    from repro.serve.job import AssaySpec

    client = ServeClient(args.url, timeout=args.timeout)
    spec = AssaySpec(
        bioassay=args.bioassay, width=args.width, height=args.height,
        seed=args.seed, max_cycles=args.max_cycles,
        tau_min=args.tau_min, tau_max=args.tau_max,
        c_min=args.c_min, c_max=args.c_max, priority=args.priority,
    )
    try:
        job_id = client.submit(spec)
    except (ServeError, OSError) as exc:
        print(f"submit failed: {exc}", file=sys.stderr)
        return 2
    print(f"submitted {job_id} ({spec.bioassay}, seed {spec.seed})")
    if not args.wait:
        return 0
    try:
        document = client.wait(job_id, timeout=args.timeout)
    except (ServeError, OSError, TimeoutError) as exc:
        print(f"wait failed: {exc}", file=sys.stderr)
        return 2
    state = document["state"]
    result = document.get("result") or {}
    if state == "done":
        print(f"{job_id}: done cycles={result.get('cycles')} "
              f"replans={result.get('resyntheses')} "
              f"run_ms={document.get('run_ms')}")
        return 0 if result.get("success") else 1
    print(f"{job_id}: {state} {document.get('error', '')}".rstrip(),
          file=sys.stderr)
    return 1


def _cmd_synth(args: argparse.Namespace) -> int:
    from repro.analysis.render import render_route
    from repro.core.routing_job import RoutingJob, zone
    from repro.core.strategy import strategy_from_synthesis
    from repro.core.synthesis import synthesize
    from repro.geometry.rect import Rect

    start = Rect(args.start[0], args.start[1],
                 args.start[0] + args.droplet - 1,
                 args.start[1] + args.droplet - 1)
    goal = Rect(args.goal[0], args.goal[1],
                args.goal[0] + args.droplet - 1,
                args.goal[1] + args.droplet - 1)
    hazard = (
        Rect(1, 1, args.width, args.height)
        if args.full_chip
        else zone(start, goal, args.width, args.height)
    )
    job = RoutingJob(start, goal, hazard)
    health = np.full((args.width, args.height), 3)
    rng = np.random.default_rng(args.seed)
    if args.dead_fraction > 0:
        dead = rng.random((args.width, args.height)) < args.dead_fraction
        health[dead] = 0
        health[start.xa - 1:start.xb, start.ya - 1:start.yb] = 3
        health[goal.xa - 1:goal.xb, goal.ya - 1:goal.yb] = 3
    result = synthesize(job, health)
    if not result.exists:
        print("no strategy exists (goal unreachable under this health matrix)")
        return 1
    print(f"states={result.model.num_states} "
          f"transitions={result.model.num_transitions} "
          f"E[cycles]={result.expected_cycles:.2f} "
          f"synthesized in {result.total_time:.2f}s\n")
    strategy = strategy_from_synthesis(job, result)
    assert strategy is not None
    print(render_route(strategy, health))
    return 0


def _cmd_degradation(args: argparse.Namespace) -> int:
    from repro.analysis.tables import format_series
    from repro.degradation.model import DegradationParams, quantize_health

    params = DegradationParams(tau=args.tau, c=args.c)
    ns = np.arange(0, args.n_max + 1, max(args.n_max // 16, 1))
    d = np.asarray(params.degradation(ns))
    print(format_series(
        "n", [int(n) for n in ns],
        {
            "D(n)": [f"{v:.3f}" for v in d],
            f"H(n) b={args.bits}": [
                str(int(v)) for v in np.asarray(quantize_health(d, args.bits))
            ],
            "force F(n)": [f"{v:.3f}" for v in d**2],
        },
        title=f"degradation lifetime for tau={args.tau}, c={args.c}",
    ))
    return 0


def _workers_arg(value: str) -> int:
    workers = int(value)
    if workers < 0:
        raise argparse.ArgumentTypeError(
            "workers must be >= 0 (0 = one per core, 1 = synchronous)"
        )
    return workers


def _add_run_options(run: argparse.ArgumentParser) -> None:
    """Register the execution options shared by ``run`` and ``monitor``."""
    run.add_argument("--bioassay", default="covid-rat")
    run.add_argument("--file", default=None,
                     help="load the bioassay from a JSON file instead")
    run.add_argument("--router", choices=("adaptive", "baseline"),
                     default="adaptive")
    run.add_argument("--runs", type=int, default=1,
                     help="consecutive executions on the same chip")
    run.add_argument("--width", type=int, default=60)
    run.add_argument("--height", type=int, default=30)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--max-cycles", type=int, default=800)
    run.add_argument("--tau-min", type=float, default=0.5)
    run.add_argument("--tau-max", type=float, default=0.9)
    run.add_argument("--c-min", type=float, default=200.0)
    run.add_argument("--c-max", type=float, default=500.0)
    run.add_argument("--workers", type=_workers_arg, default=1,
                     help="synthesis worker processes (adaptive router only): "
                          "1 = synchronous (default), 0 = one per core, "
                          "N>1 = a pool of N")
    run.add_argument("--prefetch", action=argparse.BooleanOptionalAction,
                     default=True,
                     help="speculatively prefetch strategies for MOs about "
                          "to activate (needs --workers != 1)")
    run.add_argument("--strategy-cache", metavar="PATH", nargs="?",
                     const="auto", default=None,
                     help="persist synthesized strategies across runs in a "
                          "SQLite cache; with no PATH, uses "
                          "~/.cache/repro/strategies.sqlite")
    run.add_argument("--engine-retries", type=int, default=2, metavar="N",
                     help="how many times a speculation is resubmitted after "
                          "a transient worker failure (default 2)")
    run.add_argument("--engine-deadline-ms", type=float, default=None,
                     metavar="MS",
                     help="per-speculation deadline; in-flight synthesis "
                          "older than this is reaped and hung workers are "
                          "killed (default: no deadline)")
    run.add_argument("--chaos", metavar="SPEC", default=None,
                     help="deterministic fault injection, e.g. "
                          "'kill=0.1,raise=0.05,delay=0.1:250,store=0.2,"
                          "seed=7' (see repro.engine.chaos; REPRO_CHAOS_SEED "
                          "overrides the seed)")
    run.add_argument("--reconfig", action=argparse.BooleanOptionalAction,
                     default=False,
                     help="quarantine failing silicon and remap module "
                          "placements around it at runtime")
    run.add_argument("--wear-level", action=argparse.BooleanOptionalAction,
                     default=False,
                     help="re-place each run biased away from accumulated "
                          "actuation wear (and bias remap slot choice when "
                          "--reconfig is on)")
    run.add_argument("--show-wear", action="store_true",
                     help="print the chip wear heatmap afterwards")
    run.add_argument("--perf", action="store_true",
                     help="print the perf counter/histogram report afterwards")
    run.add_argument("--trace", metavar="PATH", default=None,
                     help="write a Chrome trace_event file (open in Perfetto) "
                          "plus a PATH.spans.jsonl span log")
    run.add_argument("--journal", metavar="PATH", default=None,
                     help="write the run journal (JSONL) to PATH")


def _add_telemetry_options(
    parser: argparse.ArgumentParser,
    monitor_flag: str = "--monitor-port",
    monitor_default: "int | None" = None,
) -> None:
    """Register the live telemetry plane options (run and monitor)."""
    parser.add_argument(monitor_flag, dest="monitor_port", type=int,
                        default=monitor_default, metavar="PORT",
                        help="serve OpenMetrics /metrics and JSON /healthz "
                             "on this port while the run executes "
                             "(0 = ephemeral port)")
    parser.add_argument("--monitor-host", default="127.0.0.1",
                        metavar="HOST",
                        help="bind address for the monitor endpoint "
                             "(default 127.0.0.1)")
    parser.add_argument("--snapshot-interval-ms", type=float, default=None,
                        metavar="MS",
                        help="journal a telemetry.snapshot (metrics) and "
                             "telemetry.resources (/proc RSS+CPU, worker "
                             "liveness) event every MS milliseconds "
                             "(needs --journal)")
    parser.add_argument("--slo", action="append", default=None,
                        metavar="SPEC",
                        help="declarative objective evaluated at end of "
                             "run, e.g. 'p99(synthesis.total_ms) < 50' or "
                             "'completion_probability == 1.0'; violations "
                             "exit 4 (repeatable)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Adaptive droplet routing for MEDA biochips (DATE 2021 "
                    "reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the bioassay suite").set_defaults(
        func=_cmd_list
    )

    run = sub.add_parser("run", help="execute a bioassay on a sampled chip")
    _add_run_options(run)
    _add_telemetry_options(run)
    run.set_defaults(func=_cmd_run)

    from repro.obs.monitor import DEFAULT_PORT

    mon = sub.add_parser(
        "monitor",
        help="run a bioassay with the live telemetry endpoint always on",
    )
    _add_run_options(mon)
    _add_telemetry_options(
        mon, monitor_flag="--port", monitor_default=DEFAULT_PORT
    )
    mon.set_defaults(func=_cmd_run)

    rep = sub.add_parser(
        "report", help="summarize a run journal written by `run --journal`"
    )
    rep.add_argument("journal", help="path to the journal JSONL file")
    rep.add_argument("--json", action="store_true",
                     help="emit the summary as JSON (NaN-free) instead of "
                          "the terminal rendering")
    rep.add_argument("--slo", action="append", default=None, metavar="SPEC",
                     help="evaluate an objective against the journal's last "
                          "telemetry snapshot and derived run values; "
                          "violations exit 4 (repeatable)")
    rep.set_defaults(func=_cmd_report)

    srv = sub.add_parser(
        "serve",
        help="resident multi-assay server: shared engine + store, "
             "HTTP job API",
    )
    srv.add_argument("--port", type=int, default=DEFAULT_PORT,
                     help="HTTP port for the job API + /metrics "
                          "(0 = ephemeral)")
    srv.add_argument("--host", default="127.0.0.1",
                     help="bind address (default 127.0.0.1)")
    srv.add_argument("--serve-workers", type=int, default=2, metavar="N",
                     help="concurrent assay worker threads (default 2)")
    srv.add_argument("--workers", type=_workers_arg, default=1,
                     help="shared synthesis engine worker processes "
                          "(1 = synchronous, 0 = one per core)")
    srv.add_argument("--prefetch", action=argparse.BooleanOptionalAction,
                     default=True,
                     help="speculative prefetch on the shared engine")
    srv.add_argument("--strategy-cache", metavar="PATH", nargs="?",
                     const="auto", default=None,
                     help="shared persistent strategy store; with no PATH, "
                          "uses the default cache location")
    srv.add_argument("--engine-retries", type=int, default=2, metavar="N")
    srv.add_argument("--engine-deadline-ms", type=float, default=None,
                     metavar="MS")
    srv.add_argument("--drain-deadline", type=float, default=30.0,
                     metavar="S",
                     help="seconds SIGTERM/SIGINT waits for queued + "
                          "in-flight jobs before cancelling the backlog")
    srv.add_argument("--journal", metavar="PATH", default=None,
                     help="tee every journal record (all jobs, "
                          "job_id-tagged) to this JSONL file")
    srv.set_defaults(func=_cmd_serve)

    subm = sub.add_parser(
        "submit", help="submit one assay job to a running `repro serve`"
    )
    subm.add_argument("--url", default=f"http://127.0.0.1:{DEFAULT_PORT}",
                      help="serve endpoint base URL")
    subm.add_argument("--bioassay", default="covid-rat")
    subm.add_argument("--width", type=int, default=60)
    subm.add_argument("--height", type=int, default=30)
    subm.add_argument("--seed", type=int, default=0)
    subm.add_argument("--max-cycles", type=int, default=800)
    subm.add_argument("--tau-min", type=float, default=0.5)
    subm.add_argument("--tau-max", type=float, default=0.9)
    subm.add_argument("--c-min", type=float, default=200.0)
    subm.add_argument("--c-max", type=float, default=500.0)
    subm.add_argument("--priority", type=int, default=0,
                      help="higher runs sooner (default 0)")
    subm.add_argument("--wait", action="store_true",
                      help="poll until the job finishes; exit 1 on failure")
    subm.add_argument("--timeout", type=float, default=600.0, metavar="S",
                      help="submit/wait HTTP timeout (default 600)")
    subm.set_defaults(func=_cmd_submit)

    synth = sub.add_parser("synth", help="synthesize one routing job")
    synth.add_argument("--start", type=int, nargs=2, default=(3, 3),
                       metavar=("X", "Y"))
    synth.add_argument("--goal", type=int, nargs=2, default=(24, 10),
                       metavar=("X", "Y"))
    synth.add_argument("--droplet", type=int, default=4,
                       help="square droplet edge length")
    synth.add_argument("--width", type=int, default=30)
    synth.add_argument("--height", type=int, default=16)
    synth.add_argument("--dead-fraction", type=float, default=0.0,
                       help="fraction of microelectrodes to kill")
    synth.add_argument("--full-chip", action="store_true",
                       help="use the whole chip as hazard bounds")
    synth.add_argument("--seed", type=int, default=0)
    synth.set_defaults(func=_cmd_synth)

    deg = sub.add_parser("degradation",
                         help="print a degradation lifetime table")
    deg.add_argument("--tau", type=float, default=0.556)
    deg.add_argument("--c", type=float, default=822.7)
    deg.add_argument("--bits", type=int, default=2)
    deg.add_argument("--n-max", type=int, default=2000)
    deg.set_defaults(func=_cmd_degradation)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
