"""Tests for the action set: Table II frontier sets, guards, Fig. 9 effects."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.actions import (
    ACTIONS,
    ALL_ACTIONS,
    CARDINAL_ACTIONS,
    DOUBLE_ACTIONS,
    HEIGHTEN_ACTIONS,
    ORDINAL_ACTIONS,
    WIDEN_ACTIONS,
    ActionClass,
    apply_action,
    enabled_actions,
    frontier,
    frontier_directions,
    guard,
)
from repro.geometry.rect import Rect

#: The running example droplet of the paper: delta = (3, 2, 7, 5).
DELTA = Rect(3, 2, 7, 5)


def droplets() -> st.SearchStrategy[Rect]:
    return st.tuples(
        st.integers(5, 20), st.integers(5, 20),
        st.integers(0, 5), st.integers(0, 5),
    ).map(lambda t: Rect(t[0], t[1], t[0] + t[2], t[1] + t[3]))


class TestRegistry:
    def test_twenty_actions(self):
        assert len(ALL_ACTIONS) == 20

    def test_family_sizes(self):
        assert len(CARDINAL_ACTIONS) == 4
        assert len(DOUBLE_ACTIONS) == 4
        assert len(ORDINAL_ACTIONS) == 4
        assert len(WIDEN_ACTIONS) == 4
        assert len(HEIGHTEN_ACTIONS) == 4

    def test_names_unique(self):
        assert len({a.name for a in ALL_ACTIONS}) == 20


class TestMoveEffects:
    """Fig. 9: intended droplet patterns after successful execution."""

    def test_cardinal_north(self):
        assert apply_action(DELTA, ACTIONS["a_N"]) == Rect(3, 3, 7, 6)

    def test_cardinal_south(self):
        assert apply_action(DELTA, ACTIONS["a_S"]) == Rect(3, 1, 7, 4)

    def test_cardinal_east(self):
        assert apply_action(DELTA, ACTIONS["a_E"]) == Rect(4, 2, 8, 5)

    def test_cardinal_west(self):
        assert apply_action(DELTA, ACTIONS["a_W"]) == Rect(2, 2, 6, 5)

    def test_double_north(self):
        assert apply_action(DELTA, ACTIONS["a_NN"]) == Rect(3, 4, 7, 7)

    def test_double_east(self):
        assert apply_action(DELTA, ACTIONS["a_EE"]) == Rect(5, 2, 9, 5)

    def test_ordinal_ne(self):
        assert apply_action(DELTA, ACTIONS["a_NE"]) == Rect(4, 3, 8, 6)

    def test_ordinal_sw(self):
        assert apply_action(DELTA, ACTIONS["a_SW"]) == Rect(2, 1, 6, 4)

    def test_widen_ne_grows_east_drops_bottom_row(self):
        # a_vNE: width +1 toward E, height -1 (bottom row released).
        assert apply_action(DELTA, ACTIONS["a_vNE"]) == Rect(3, 3, 8, 5)

    def test_widen_sw_grows_west_drops_top_row(self):
        assert apply_action(DELTA, ACTIONS["a_vSW"]) == Rect(2, 2, 7, 4)

    def test_heighten_ne_grows_north_drops_west_column(self):
        assert apply_action(DELTA, ACTIONS["a_^NE"]) == Rect(4, 2, 7, 6)

    def test_heighten_sw_grows_south_drops_east_column(self):
        assert apply_action(DELTA, ACTIONS["a_^SW"]) == Rect(3, 1, 6, 5)


class TestTableII:
    """The frontier sets of Table II for delta = (xa, ya, xb, yb)."""

    def test_a_n(self):
        assert frontier(DELTA, ACTIONS["a_N"], "N") == Rect(3, 6, 7, 6)
        assert frontier(DELTA, ACTIONS["a_N"], "E") is None
        assert frontier(DELTA, ACTIONS["a_N"], "S") is None

    def test_a_s(self):
        assert frontier(DELTA, ACTIONS["a_S"], "S") == Rect(3, 1, 7, 1)

    def test_a_e(self):
        assert frontier(DELTA, ACTIONS["a_E"], "E") == Rect(8, 2, 8, 5)
        assert frontier(DELTA, ACTIONS["a_E"], "N") is None

    def test_a_w(self):
        assert frontier(DELTA, ACTIONS["a_W"], "W") == Rect(2, 2, 2, 5)

    def test_a_ne_example2(self):
        """Example 2: Fr(delta; a_NE, E) = [8,8]x[3,6], Fr(..., N) = [4,8]x[6,6]."""
        assert frontier(DELTA, ACTIONS["a_NE"], "E") == Rect(8, 3, 8, 6)
        assert frontier(DELTA, ACTIONS["a_NE"], "N") == Rect(4, 6, 8, 6)

    def test_a_nw(self):
        assert frontier(DELTA, ACTIONS["a_NW"], "N") == Rect(2, 6, 6, 6)
        assert frontier(DELTA, ACTIONS["a_NW"], "W") == Rect(2, 3, 2, 6)

    def test_a_se(self):
        assert frontier(DELTA, ACTIONS["a_SE"], "S") == Rect(4, 1, 8, 1)
        assert frontier(DELTA, ACTIONS["a_SE"], "E") == Rect(8, 1, 8, 4)

    def test_a_sw(self):
        assert frontier(DELTA, ACTIONS["a_SW"], "S") == Rect(2, 1, 6, 1)
        assert frontier(DELTA, ACTIONS["a_SW"], "W") == Rect(2, 1, 2, 4)

    def test_widen_frontiers(self):
        # a_vNE: Fr(.., E) = [xb+, xb+] x [ya+, yb], size yb - ya.
        fr = frontier(DELTA, ACTIONS["a_vNE"], "E")
        assert fr == Rect(8, 3, 8, 5)
        assert fr.area == DELTA.yb - DELTA.ya
        assert frontier(DELTA, ACTIONS["a_vNE"], "N") is None

    def test_widen_sw_frontier(self):
        assert frontier(DELTA, ACTIONS["a_vSW"], "W") == Rect(2, 2, 2, 4)

    def test_heighten_frontiers(self):
        # a_^NE: Fr(.., N) = [xa+, xb] x [yb+, yb+], size xb - xa.
        fr = frontier(DELTA, ACTIONS["a_^NE"], "N")
        assert fr == Rect(4, 6, 7, 6)
        assert fr.area == DELTA.xb - DELTA.xa
        assert frontier(DELTA, ACTIONS["a_^NE"], "E") is None

    def test_heighten_sw_frontier(self):
        assert frontier(DELTA, ACTIONS["a_^SW"], "S") == Rect(3, 1, 6, 1)

    def test_frontier_sizes_match_table(self):
        w, h = DELTA.width, DELTA.height
        assert frontier(DELTA, ACTIONS["a_N"], "N").area == w
        assert frontier(DELTA, ACTIONS["a_E"], "E").area == h
        assert frontier(DELTA, ACTIONS["a_NE"], "N").area == w
        assert frontier(DELTA, ACTIONS["a_NE"], "E").area == h
        assert frontier(DELTA, ACTIONS["a_vSE"], "E").area == h - 1
        assert frontier(DELTA, ACTIONS["a_^SE"], "S").area == w - 1

    def test_unknown_direction_rejected(self):
        with pytest.raises(ValueError):
            frontier(DELTA, ACTIONS["a_N"], "X")

    def test_frontier_directions(self):
        assert frontier_directions(ACTIONS["a_N"]) == ("N",)
        assert frontier_directions(ACTIONS["a_EE"]) == ("E",)
        assert set(frontier_directions(ACTIONS["a_SE"])) == {"S", "E"}
        assert frontier_directions(ACTIONS["a_vNW"]) == ("W",)
        assert frontier_directions(ACTIONS["a_^SE"]) == ("S",)


class TestGuards:
    def test_paper_guard_example(self):
        """Sec. V-B: for r = 3/2 and delta = (3, 2, 7, 5), g_up holds while
        g_down does not."""
        assert guard(DELTA, ACTIONS["a_^NE"], max_aspect=1.5)
        assert not guard(DELTA, ACTIONS["a_vNE"], max_aspect=1.5)

    def test_double_step_needs_length_four(self):
        tall = Rect(3, 3, 5, 6)  # 3 wide, 4 tall
        assert guard(tall, ACTIONS["a_NN"])
        assert guard(tall, ACTIONS["a_SS"])
        assert not guard(tall, ACTIONS["a_EE"])
        assert not guard(tall, ACTIONS["a_WW"])

    def test_cardinal_and_ordinal_always_enabled(self):
        tiny = Rect(5, 5, 5, 5)
        for action in CARDINAL_ACTIONS + ORDINAL_ACTIONS:
            assert guard(tiny, action)

    def test_single_row_cannot_widen(self):
        flat = Rect(3, 3, 6, 3)
        for action in WIDEN_ACTIONS:
            assert not guard(flat, action, max_aspect=100.0)

    def test_single_column_cannot_heighten(self):
        thin = Rect(3, 3, 3, 6)
        for action in HEIGHTEN_ACTIONS:
            assert not guard(thin, action, max_aspect=100.0)

    def test_square_droplet_morphs_disabled_at_r_1_5(self):
        square = Rect(5, 5, 8, 8)
        enabled = enabled_actions(square, max_aspect=1.5)
        assert not any(
            a.klass in (ActionClass.WIDEN, ActionClass.HEIGHTEN) for a in enabled
        )

    def test_square_4x4_morphs_enabled_at_r_2(self):
        square = Rect(5, 5, 8, 8)
        enabled = enabled_actions(square, max_aspect=2.0)
        assert any(a.klass is ActionClass.WIDEN for a in enabled)

    def test_invalid_aspect_bound_rejected(self):
        with pytest.raises(ValueError):
            guard(DELTA, ACTIONS["a_vNE"], max_aspect=0.5)


class TestProperties:
    @given(droplets(), st.sampled_from(list(ALL_ACTIONS)))
    def test_frontier_disjoint_from_droplet(self, delta: Rect, action):
        for direction in frontier_directions(action):
            fr = frontier(delta, action, direction)
            if fr is not None:
                assert not fr.overlaps(delta)

    @given(droplets(), st.sampled_from(list(ALL_ACTIONS)))
    def test_frontier_inside_result_pattern(self, delta: Rect, action):
        """Every frontier MC belongs to the successful-move pattern: the
        frontier cells are the ones that pull the droplet to where it goes."""
        if action.klass is ActionClass.DOUBLE:
            return  # the first-hop frontier lies inside the one-step pattern
        if not guard(delta, action, max_aspect=1e9):
            return  # degenerate morph: no frontier, no result pattern
        result = apply_action(delta, action)
        for direction in frontier_directions(action):
            fr = frontier(delta, action, direction)
            if fr is not None:
                assert result.contains(fr) or result.overlaps(fr)

    @given(droplets(), st.sampled_from(list(CARDINAL_ACTIONS + DOUBLE_ACTIONS + ORDINAL_ACTIONS)))
    def test_moves_preserve_shape(self, delta: Rect, action):
        result = apply_action(delta, action)
        assert (result.width, result.height) == (delta.width, delta.height)

    @given(droplets(), st.sampled_from(list(WIDEN_ACTIONS)))
    def test_widen_changes_shape_correctly(self, delta: Rect, action):
        if delta.height < 2:
            return
        result = apply_action(delta, action)
        assert result.width == delta.width + 1
        assert result.height == delta.height - 1

    @given(droplets(), st.sampled_from(list(HEIGHTEN_ACTIONS)))
    def test_heighten_changes_shape_correctly(self, delta: Rect, action):
        if delta.width < 2:
            return
        result = apply_action(delta, action)
        assert result.width == delta.width - 1
        assert result.height == delta.height + 1

    @given(droplets())
    def test_morph_guards_respect_aspect_bound(self, delta: Rect):
        """If the droplet starts within [1/r, r], any guarded morph keeps it
        there — the inductive invariant the guards exist to maintain."""
        r = 2.0
        if not 1 / r <= delta.aspect_ratio <= r:
            return
        for action in WIDEN_ACTIONS + HEIGHTEN_ACTIONS:
            if guard(delta, action, max_aspect=r):
                result = apply_action(delta, action)
                assert 1 / r <= result.aspect_ratio <= r

    @given(droplets())
    def test_opposite_cardinal_moves_cancel(self, delta: Rect):
        there = apply_action(delta, ACTIONS["a_N"])
        back = apply_action(there, ACTIONS["a_S"])
        assert back == delta
