"""Tests for fault injection (Sec. VII-C)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.degradation.faults import (
    CLUSTER_SIZE,
    FaultInjector,
    FaultMode,
    FaultPlan,
    no_faults,
)


class TestNoFaults:
    def test_empty_plan(self):
        plan = no_faults(10, 8)
        assert plan.fault_fraction == 0.0
        counts = np.full((10, 8), 10**9)
        assert not plan.failed_mask(counts).any()


class TestUniformInjection:
    def test_fraction_respected(self, rng):
        inj = FaultInjector(FaultMode.UNIFORM, fraction=0.1)
        plan = inj.inject(40, 25, rng)
        assert plan.fault_fraction == pytest.approx(0.1, abs=0.01)

    def test_zero_fraction_yields_no_faults(self, rng):
        plan = FaultInjector(FaultMode.UNIFORM, fraction=0.0).inject(10, 10, rng)
        assert plan.fault_fraction == 0.0

    def test_fail_counts_within_range(self, rng):
        inj = FaultInjector(FaultMode.UNIFORM, fraction=0.2, fail_range=(30, 60))
        plan = inj.inject(20, 20, rng)
        finite = plan.fail_at[plan.faulty]
        assert finite.min() >= 30 and finite.max() <= 60

    def test_healthy_cells_never_fail(self, rng):
        plan = FaultInjector(FaultMode.UNIFORM, fraction=0.3).inject(15, 15, rng)
        assert np.all(np.isinf(plan.fail_at[~plan.faulty]))

    def test_failed_mask_thresholds(self, rng):
        plan = FaultInjector(FaultMode.UNIFORM, fraction=0.5,
                             fail_range=(10, 10)).inject(10, 10, rng)
        below = plan.failed_mask(np.full((10, 10), 9))
        at = plan.failed_mask(np.full((10, 10), 10))
        assert not below.any()
        assert (at == plan.faulty).all()

    def test_shape_mismatch_rejected(self, rng):
        plan = FaultInjector().inject(10, 10, rng)
        with pytest.raises(ValueError):
            plan.failed_mask(np.zeros((5, 5)))


class TestClusteredInjection:
    def test_faults_form_clusters(self, rng):
        inj = FaultInjector(FaultMode.CLUSTERED, fraction=0.05)
        plan = inj.inject(40, 30, rng)
        # Every faulty MC must have at least one faulty 4-neighbour (it came
        # from a 2x2 block).
        faulty = plan.faulty
        xs, ys = np.nonzero(faulty)
        for x, y in zip(xs, ys):
            neighbours = []
            for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
                nx, ny = x + dx, y + dy
                if 0 <= nx < 40 and 0 <= ny < 30:
                    neighbours.append(faulty[nx, ny])
            assert any(neighbours)

    def test_fraction_approximately_met(self, rng):
        inj = FaultInjector(FaultMode.CLUSTERED, fraction=0.08)
        plan = inj.inject(50, 30, rng)
        assert plan.fault_fraction == pytest.approx(0.08, abs=0.02)

    def test_tiny_array_rejected(self, rng):
        inj = FaultInjector(FaultMode.CLUSTERED, fraction=0.5)
        with pytest.raises(ValueError):
            inj.inject(1, 1, rng)


class TestValidation:
    def test_bad_fraction_rejected(self):
        with pytest.raises(ValueError):
            FaultInjector(fraction=1.5)

    def test_bad_fail_range_rejected(self):
        with pytest.raises(ValueError):
            FaultInjector(fail_range=(50, 10))

    def test_bad_dimensions_rejected(self, rng):
        with pytest.raises(ValueError):
            FaultInjector().inject(0, 10, rng)


class TestProperties:
    @given(
        st.integers(CLUSTER_SIZE, 30),
        st.integers(CLUSTER_SIZE, 30),
        st.floats(0.0, 0.5),
        st.sampled_from([FaultMode.UNIFORM, FaultMode.CLUSTERED]),
        st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_plan_is_consistent(self, w, h, frac, mode, seed):
        rng = np.random.default_rng(seed)
        plan = FaultInjector(mode, fraction=frac).inject(w, h, rng)
        assert plan.faulty.shape == (w, h)
        assert plan.fail_at.shape == (w, h)
        # fail_at finite exactly on faulty cells
        assert (np.isfinite(plan.fail_at) == plan.faulty).all()
