"""Tests for the charge-trapping degradation model (Sec. IV-B)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.degradation.model import (
    PAPER_FITTED_CONSTANTS,
    DegradationParams,
    health_to_degradation_estimate,
    quantize_health,
    sample_params,
)


class TestDegradationParams:
    def test_fresh_cell_is_pristine(self):
        p = DegradationParams(tau=0.556, c=822.7)
        assert p.degradation(0) == pytest.approx(1.0)
        assert p.relative_force(0) == pytest.approx(1.0)

    def test_force_is_degradation_squared(self):
        p = DegradationParams(tau=0.543, c=805.5)
        for n in (0, 100, 500, 1500):
            assert p.relative_force(n) == pytest.approx(p.degradation(n) ** 2)

    def test_degradation_at_c_actuations_equals_tau(self):
        # D(c) = tau^(c/c) = tau, by eq. 3.
        p = DegradationParams(tau=0.7, c=300.0)
        assert p.degradation(300) == pytest.approx(0.7)

    def test_monotone_decreasing(self):
        p = DegradationParams(tau=0.5, c=200.0)
        d = p.degradation(np.arange(0, 2000, 50))
        assert np.all(np.diff(d) < 0)

    def test_invalid_tau_rejected(self):
        with pytest.raises(ValueError):
            DegradationParams(tau=0.0, c=100.0)
        with pytest.raises(ValueError):
            DegradationParams(tau=1.5, c=100.0)

    def test_invalid_c_rejected(self):
        with pytest.raises(ValueError):
            DegradationParams(tau=0.5, c=0.0)

    def test_inverse_actuations_to_degradation(self):
        p = DegradationParams(tau=0.6, c=400.0)
        n = p.actuations_to_degradation(0.75)
        assert p.degradation(n) == pytest.approx(0.75)

    def test_inverse_at_full_health_is_zero(self):
        p = DegradationParams(tau=0.6, c=400.0)
        assert p.actuations_to_degradation(1.0) == 0.0

    def test_non_degrading_cell_never_reaches_level(self):
        p = DegradationParams(tau=1.0, c=100.0)
        assert p.actuations_to_degradation(0.5) == float("inf")

    def test_paper_constants_decay_substantially_by_2000(self):
        # Fig. 6: all three fitted curves fall below 0.3 relative force
        # within two thousand actuations.
        for tau, c in PAPER_FITTED_CONSTANTS.values():
            p = DegradationParams(tau=tau, c=c)
            assert p.relative_force(2000) < 0.3

    def test_vectorized_matches_scalar(self):
        p = DegradationParams(tau=0.62, c=350.0)
        ns = np.array([0, 10, 100, 1000])
        vec = p.degradation(ns)
        for n, v in zip(ns, vec):
            assert v == pytest.approx(float(p.degradation(int(n))))


class TestQuantizeHealth:
    def test_pristine_reads_top_code(self):
        assert quantize_health(1.0, bits=2) == 3

    def test_dead_reads_zero(self):
        assert quantize_health(0.0, bits=2) == 0

    def test_bucket_boundaries(self):
        assert quantize_health(0.25, bits=2) == 1
        assert quantize_health(0.4999, bits=2) == 1
        assert quantize_health(0.5, bits=2) == 2

    def test_three_bit_resolution(self):
        assert quantize_health(0.95, bits=3) == 7
        assert quantize_health(0.1, bits=3) == 0

    def test_matrix_quantization(self):
        d = np.array([[1.0, 0.6], [0.3, 0.0]])
        h = quantize_health(d, bits=2)
        assert h.tolist() == [[3, 2], [1, 0]]

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            quantize_health(1.2)
        with pytest.raises(ValueError):
            quantize_health(-0.1)

    def test_zero_bits_rejected(self):
        with pytest.raises(ValueError):
            quantize_health(0.5, bits=0)

    @given(st.floats(0.0, 1.0), st.integers(1, 6))
    def test_health_within_code_range(self, d: float, bits: int):
        h = quantize_health(d, bits=bits)
        assert 0 <= h <= (1 << bits) - 1

    @given(st.floats(0.0, 1.0), st.floats(0.0, 1.0), st.integers(1, 4))
    def test_monotone_in_degradation(self, d0: float, d1: float, bits: int):
        if d0 <= d1:
            assert quantize_health(d0, bits) <= quantize_health(d1, bits)


class TestHealthEstimate:
    def test_mid_bucket_default(self):
        assert health_to_degradation_estimate(2, bits=2) == pytest.approx(0.625)
        assert health_to_degradation_estimate(3, bits=2) == pytest.approx(0.875)

    def test_health_zero_estimates_zero_force(self):
        # Sec. VII-D: health-0 cells produce zero-probability transitions.
        assert health_to_degradation_estimate(0, bits=2) == 0.0

    def test_pessimistic_uses_bucket_floor(self):
        assert health_to_degradation_estimate(2, bits=2, pessimistic=True) == 0.5
        assert health_to_degradation_estimate(0, bits=2, pessimistic=True) == 0.0

    def test_matrix_estimate(self):
        h = np.array([[3, 0], [1, 2]])
        est = health_to_degradation_estimate(h, bits=2)
        assert est[0, 1] == 0.0
        assert est[1, 0] == pytest.approx(0.375)

    def test_out_of_range_code_rejected(self):
        with pytest.raises(ValueError):
            health_to_degradation_estimate(4, bits=2)

    @given(st.integers(0, 3))
    def test_estimate_within_observed_bucket(self, h: int):
        est = health_to_degradation_estimate(h, bits=2)
        if h > 0:
            assert h / 4 <= est < (h + 1) / 4
        assert quantize_health(min(est, 1.0), bits=2) == h if h > 0 else est == 0.0


class TestSampleParams:
    def test_scalar_sample_in_range(self, rng):
        p = sample_params(rng)
        assert 0.5 <= p.tau <= 0.9
        assert 200.0 <= p.c <= 500.0

    def test_matrix_sample_shape(self, rng):
        arr = sample_params(rng, shape=(4, 3))
        assert arr.shape == (4, 3)
        assert all(isinstance(arr[i, j], DegradationParams)
                   for i in range(4) for j in range(3))

    def test_custom_ranges(self, rng):
        p = sample_params(rng, tau_range=(0.95, 0.99), c_range=(10.0, 20.0))
        assert 0.95 <= p.tau <= 0.99
        assert 10.0 <= p.c <= 20.0
