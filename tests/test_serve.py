"""Tests for the multi-assay serving core (``repro.serve``).

Covers the job queue, spec validation, engine fair-share admission and
the single-core admission floor, the HTTP round-trip against a live
server fixture, graceful drain, and the load-bearing correctness gate:
traces of concurrently served assays on one shared engine + store are
bit-identical to their solo runs.
"""

from __future__ import annotations

import json
import os
import threading
import time

import pytest

from repro import obs
from repro.core.routing_job import RoutingJob, zone
from repro.engine import SynthesisEngine
from repro.geometry.rect import Rect
from repro.serve import (
    AssayJob,
    AssaySpec,
    JobQueue,
    ServeClient,
    ServeDraining,
    ServeError,
    ServeService,
    execute_assay,
)

WORKERS = int(os.environ.get("REPRO_TEST_WORKERS", "2"))

W, H = 30, 20


def make_job(goal_x: int) -> RoutingJob:
    start = Rect(2, 2, 5, 5)
    goal = Rect(goal_x, 10, goal_x + 3, 13)
    return RoutingJob(start, goal, zone(start, goal, W, H))


def full_health():
    import numpy as np

    return np.full((W, H), 3)


class TestJobQueue:
    def test_priority_then_fifo(self):
        queue = JobQueue()
        low1 = AssayJob(spec=AssaySpec(priority=0))
        high = AssayJob(spec=AssaySpec(priority=5))
        low2 = AssayJob(spec=AssaySpec(priority=0))
        queue.put(low1)
        queue.put(high)
        queue.put(low2)
        assert queue.get() is high
        assert queue.get() is low1  # FIFO within equal priority
        assert queue.get() is low2
        assert queue.get(timeout=0.01) is None

    def test_close_wakes_blocked_get_and_rejects_put(self):
        queue = JobQueue()
        got: list = []
        thread = threading.Thread(
            target=lambda: got.append(queue.get(timeout=30.0))
        )
        thread.start()
        time.sleep(0.05)
        queue.close()
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert got == [None]
        with pytest.raises(RuntimeError):
            queue.put(AssayJob(spec=AssaySpec()))

    def test_drain_empties_backlog(self):
        queue = JobQueue()
        jobs = [AssayJob(spec=AssaySpec()) for _ in range(3)]
        for job in jobs:
            queue.put(job)
        drained = queue.drain()
        assert set(j.id for j in drained) == set(j.id for j in jobs)
        assert len(queue) == 0


class TestAssaySpec:
    def test_from_dict_applies_defaults_and_coerces(self):
        spec = AssaySpec.from_dict(
            {"bioassay": "master-mix", "seed": "7", "width": 40.0,
             "height": 24}
        )
        assert spec.bioassay == "master-mix"
        assert spec.seed == 7 and isinstance(spec.seed, int)
        assert spec.width == 40
        assert spec.max_cycles == 800  # CLI default

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown spec field"):
            AssaySpec.from_dict({"bioassy": "master-mix"})

    def test_unknown_bioassay_rejected(self):
        with pytest.raises(ValueError, match="unknown bioassay"):
            AssaySpec.from_dict({"bioassay": "no-such-assay"})

    def test_bad_ranges_rejected(self):
        with pytest.raises(ValueError, match="tau range"):
            AssaySpec(tau_min=0.9, tau_max=0.5).validate()
        with pytest.raises(ValueError, match="max_cycles"):
            AssaySpec(max_cycles=0).validate()


class TestJobTimestamps:
    def test_payload_reports_wall_clock_not_monotonic(self):
        # Monotonic-clock values (seconds since boot) leaking into HTTP
        # payloads read as bogus wall-clock times; the document must carry
        # epoch timestamps plus monotonic-derived durations.
        before = time.time()
        job = AssayJob(spec=AssaySpec(bioassay="master-mix"))
        job.mark_started()
        job.mark_finished()
        after = time.time()
        document = job.to_dict()
        for key in ("submitted_at", "started_at", "finished_at"):
            assert before - 1 <= document[key] <= after + 1, \
                f"{key}={document[key]} is not a wall-clock timestamp"
        assert document["submitted_at"] <= document["started_at"]
        assert document["started_at"] <= document["finished_at"]
        assert document["queued_ms"] >= 0
        assert document["run_ms"] >= 0

    def test_unstarted_job_has_no_durations(self):
        document = AssayJob(spec=AssaySpec(bioassay="master-mix")).to_dict()
        assert "queued_ms" not in document
        assert "run_ms" not in document
        assert "started_at" not in document
        assert "finished_at" not in document
        assert document["submitted_at"] > 0


@pytest.mark.skipif(WORKERS < 2, reason="needs a worker pool")
class TestFairShare:
    def test_second_tenant_shrinks_the_share(self):
        engine = SynthesisEngine(workers=WORKERS, max_inflight=4)
        try:
            view_a = engine.tenant("a")
            view_b = engine.tenant("b")
            health = full_health()
            # Two active tenants split max_inflight=4 into 2 each.
            assert view_a.submit(make_job(18), health)
            assert view_a.submit(make_job(20), health)
            assert not view_a.submit(make_job(22), health)  # over a's share
            assert engine.fair_rejected == 1
            assert view_b.submit(make_job(18), health)  # b unaffected
            view_b.close()
            # a is the lone tenant again: the full budget is its share.
            assert view_a.submit(make_job(22), health)
        finally:
            engine.close()

    def test_released_tenant_speculations_are_discarded(self):
        engine = SynthesisEngine(workers=WORKERS)
        try:
            view = engine.tenant("ephemeral")
            assert view.submit(make_job(18), full_health())
            assert len(engine._pending) == 1
            view.close()
            assert len(engine._pending) == 0
            assert engine.wasted == 1
        finally:
            engine.close()


class TestAdmissionFloor:
    def test_single_tenant_single_core_skips_speculation(self, monkeypatch):
        import repro.engine.pool as pool_mod

        monkeypatch.setattr(pool_mod.os, "cpu_count", lambda: 1)
        engine = SynthesisEngine(workers=WORKERS, admission_floor=True)
        try:
            if not engine.pooled:
                pytest.skip("pool unavailable")
            assert not engine.submit(make_job(18), full_health())
            assert engine.floor_skips == 1
            # Two registered tenants are concurrent demand: floor lifts.
            view_a = engine.tenant("a")
            view_b = engine.tenant("b")
            assert view_a.submit(make_job(18), full_health())
            view_a.close()
            view_b.close()
        finally:
            engine.close()

    def test_multicore_never_floors(self, monkeypatch):
        import repro.engine.pool as pool_mod

        monkeypatch.setattr(pool_mod.os, "cpu_count", lambda: 4)
        engine = SynthesisEngine(workers=WORKERS, admission_floor=True)
        try:
            if not engine.pooled:
                pytest.skip("pool unavailable")
            assert engine.submit(make_job(18), full_health())
            assert engine.floor_skips == 0
        finally:
            engine.close()


def quick_specs() -> list[AssaySpec]:
    return [
        AssaySpec(bioassay="master-mix", width=40, height=24, seed=3,
                  max_cycles=400),
        AssaySpec(bioassay="serial-dilution", width=40, height=24, seed=5,
                  max_cycles=400),
    ]


@pytest.fixture
def service(tmp_path):
    svc = ServeService(
        port=0, serve_workers=2, engine_workers=1,
        store_path=tmp_path / "serve-store.sqlite",
        keep_traces=True, drain_deadline_s=60.0,
    )
    svc.start()
    yield svc
    if not svc._stopped:
        svc.drain(deadline_s=60.0)


class TestHTTPRoundTrip:
    def test_submit_poll_events(self, service):
        client = ServeClient(service.url)
        spec = quick_specs()[0]
        job_id = client.submit(spec)
        document = client.wait(job_id, timeout=120.0)
        assert document["state"] == "done"
        assert document["result"]["success"] is True
        assert document["spec"]["bioassay"] == "master-mix"

        records, next_offset, state = client.events(job_id)
        assert state == "done"
        assert next_offset == len(records)
        events = {record["event"] for record in records}
        assert "serve.job.start" in events
        assert "serve.job.done" in events
        # Every buffered record is stamped with this job's id.
        assert all(record.get("job_id") == job_id for record in records)
        # Paging: a later read from the cursor returns only the tail.
        tail, _, _ = client.events(job_id, since=next_offset)
        assert tail == []

        assert any(entry["id"] == job_id for entry in client.jobs())
        health = client.healthz()
        assert health["role"] == "serve"
        assert health["jobs"]["done"] >= 1
        assert "repro_serve_jobs_completed" in client.metrics()

    def test_bad_spec_is_400_and_missing_job_404(self, service):
        client = ServeClient(service.url)
        with pytest.raises(ServeError) as bad:
            client.submit({"bioassay": "no-such-assay"})
        assert bad.value.status == 400
        with pytest.raises(ServeError) as missing:
            client.job("job-999999")
        assert missing.value.status == 404


class TestDrain:
    def test_draining_rejects_submissions_with_503(self, service):
        client = ServeClient(service.url)
        with service._lock:
            service._draining = True
        try:
            with pytest.raises(ServeDraining):
                service.submit(quick_specs()[0])
            with pytest.raises(ServeError) as refused:
                client.submit(quick_specs()[0])
            assert refused.value.status == 503
        finally:
            with service._lock:
                service._draining = False

    def test_expired_deadline_rejects_backlog(self, tmp_path):
        svc = ServeService(port=0, serve_workers=1, engine_workers=1,
                           keep_traces=False)
        svc.start()
        jobs = [svc.submit(spec) for spec in quick_specs() * 2]
        summary = svc.drain(deadline_s=0.0)
        states = {job.state for job in jobs}
        assert summary["rejected_at_drain"] >= 1
        assert states <= {"done", "rejected", "running"}
        rejected = [job for job in jobs if job.state == "rejected"]
        assert all("drain" in (job.error or "") for job in rejected)

    def test_drain_journals_begin_and_end(self, tmp_path):
        journal_path = tmp_path / "serve.jsonl"
        svc = ServeService(port=0, serve_workers=1, engine_workers=1,
                           journal_path=journal_path)
        svc.start()
        svc.submit(quick_specs()[0])
        svc.drain(deadline_s=60.0)
        records = [
            json.loads(line)
            for line in journal_path.read_text().splitlines() if line
        ]
        phases = [r["phase"] for r in records if r["event"] == "serve.drain"]
        assert phases == ["begin", "end"]
        assert any(r["event"] == "serve.job.done" for r in records)


class TestJournalScope:
    def test_scope_stamps_thread_local_fields(self):
        journal = obs.RunJournal()
        seen: dict[str, list] = {"a": [], "b": []}

        def run(tag: str) -> None:
            with obs.journal_scope(job_id=tag):
                journal.emit("x", detail=tag)

        threads = [
            threading.Thread(target=run, args=(tag,)) for tag in ("a", "b")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        journal.emit("x", detail="unscoped")
        by_detail = {r["detail"]: r for r in journal.records}
        assert by_detail["a"]["job_id"] == "a"
        assert by_detail["b"]["job_id"] == "b"
        assert "job_id" not in by_detail["unscoped"]

    def test_explicit_field_beats_scope(self):
        journal = obs.RunJournal()
        with obs.journal_scope(job_id="outer"):
            journal.emit("x", job_id="explicit")
        assert journal.records[-1]["job_id"] == "explicit"


class TestTraceIdentity:
    def test_concurrent_served_traces_match_solo(self, tmp_path):
        """The serving gate: assays multiplexed onto one shared engine +
        store produce traces bit-identical to their solo runs."""
        specs = quick_specs() * 2  # repeats exercise the shared store
        solo = {}
        for spec in quick_specs():
            outcome = execute_assay(spec, engine=None)
            solo[(spec.bioassay, spec.seed)] = outcome

        svc = ServeService(
            port=0, serve_workers=2,
            engine_workers=WORKERS if WORKERS > 1 else 1,
            store_path=tmp_path / "shared.sqlite", keep_traces=True,
        )
        svc.start()
        try:
            jobs = [svc.submit(spec) for spec in specs]
            for job in jobs:
                assert job.wait_done(timeout=300.0)
            for job in jobs:
                assert job.state == "done", job.error
                reference = solo[(job.spec.bioassay, job.spec.seed)]
                served = svc.trace(job.id)
                assert served is not None
                assert job.result["cycles"] == reference.result.cycles
                assert (job.result["resyntheses"]
                        == reference.result.resyntheses)
                assert len(served.frames) == len(reference.trace.frames)
                for ref_frame, srv_frame in zip(
                    reference.trace.frames, served.frames
                ):
                    assert srv_frame.cycle == ref_frame.cycle
                    assert srv_frame.droplets == ref_frame.droplets
                    assert srv_frame.moving == ref_frame.moving
            # The repeats must have amortized: the shared store served at
            # least one strategy that a solo run would have synthesized.
            store = svc.engine.store
            assert store.hits + store.memo_hits > 0
        finally:
            if not svc._stopped:
                svc.drain(deadline_s=60.0)
