"""Tests for the persistent on-disk strategy store."""

from __future__ import annotations

import sqlite3

import numpy as np

from repro.core.routing_job import RoutingJob, zone
from repro.core.strategy import strategy_from_synthesis
from repro.core.synthesis import synthesize
from repro.engine.store import StrategyStore, default_store_path
from repro.geometry.rect import Rect

W, H = 30, 20


def job(start=Rect(2, 2, 5, 5), goal=Rect(20, 10, 23, 13)) -> RoutingJob:
    return RoutingJob(start, goal, zone(start, goal, W, H))


def full_health() -> np.ndarray:
    return np.full((W, H), 3)


def solved_strategy(the_job=None, health=None):
    the_job = the_job if the_job is not None else job()
    health = health if health is not None else full_health()
    return strategy_from_synthesis(the_job, synthesize(the_job, health))


class TestRoundTrip:
    def test_put_get_hit(self, tmp_path):
        strategy = solved_strategy()
        with StrategyStore(tmp_path / "s.sqlite") as store:
            assert store.get(job(), full_health()) is None
            store.put(job(), full_health(), strategy)
            loaded = store.get(job(), full_health())
        assert loaded == strategy
        assert store.hits == 1 and store.misses == 1

    def test_persists_across_instances(self, tmp_path):
        path = tmp_path / "s.sqlite"
        strategy = solved_strategy()
        with StrategyStore(path) as store:
            store.put(job(), full_health(), strategy)
        with StrategyStore(path) as fresh:
            assert fresh.get(job(), full_health()) == strategy

    def test_changed_zone_health_is_stale_miss(self, tmp_path):
        strategy = solved_strategy()
        with StrategyStore(tmp_path / "s.sqlite") as store:
            store.put(job(), full_health(), strategy)
            degraded = full_health()
            degraded[10, 8] = 1  # inside the hazard zone
            assert store.get(job(), degraded) is None
        assert store.stale == 1 and store.misses == 1

    def test_out_of_zone_health_still_hits(self, tmp_path):
        strategy = solved_strategy()
        with StrategyStore(tmp_path / "s.sqlite") as store:
            store.put(job(), full_health(), strategy)
            changed = full_health()
            changed[0, 19] = 0  # outside the hazard zone
            assert store.get(job(), changed) == strategy

    def test_different_synthesis_params_never_collide(self, tmp_path):
        path = tmp_path / "s.sqlite"
        strategy = solved_strategy()
        with StrategyStore(path, bits=2) as store:
            store.put(job(), full_health(), strategy)
        with StrategyStore(path, bits=3) as other:
            assert other.get(job(), full_health()) is None


class TestEviction:
    def test_lru_bound_evicts_oldest(self, tmp_path):
        jobs = [
            job(start=Rect(2, 2 + dy, 5, 5 + dy)) for dy in range(4)
        ]
        strategies = [solved_strategy(j) for j in jobs]
        with StrategyStore(tmp_path / "s.sqlite", max_entries=3) as store:
            for j, s in zip(jobs[:3], strategies[:3]):
                store.put(j, full_health(), s)
            # Touch the first entry so the second becomes least recent.
            assert store.get(jobs[0], full_health()) is not None
            store.put(jobs[3], full_health(), strategies[3])
            assert len(store) == 3
            assert store.get(jobs[1], full_health()) is None
            assert store.get(jobs[0], full_health()) is not None
            assert store.get(jobs[3], full_health()) is not None


class TestCorruptionTolerance:
    def test_garbage_file_is_recreated(self, tmp_path):
        path = tmp_path / "s.sqlite"
        path.write_bytes(b"this is not a sqlite database at all \x00\xff")
        store = StrategyStore(path)
        assert store.usable
        assert store.corrupt == 1
        strategy = solved_strategy()
        store.put(job(), full_health(), strategy)
        assert store.get(job(), full_health()) == strategy
        store.close()

    def test_garbage_row_is_dropped(self, tmp_path):
        path = tmp_path / "s.sqlite"
        with StrategyStore(path) as store:
            store.put(job(), full_health(), solved_strategy())
        with sqlite3.connect(str(path)) as conn:
            conn.execute("UPDATE strategies SET payload = '{not json'")
            conn.commit()
        with StrategyStore(path) as store:
            assert store.get(job(), full_health()) is None
            assert store.corrupt == 1
            assert len(store) == 0  # the bad row was deleted

    def test_unwritable_location_degrades_to_noop(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("a file where the store wants a directory")
        store = StrategyStore(blocker / "s.sqlite")
        assert not store.usable
        # All operations become no-ops instead of raising.
        store.put(job(), full_health(), solved_strategy())
        assert store.get(job(), full_health()) is None
        store.close()


class TestDefaultPath:
    def test_honours_xdg_cache_home(self, tmp_path, monkeypatch):
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path))
        assert default_store_path() == tmp_path / "repro" / "strategies.sqlite"


class TestMemoAndConcurrency:
    def test_memo_serves_repeat_reads(self, tmp_path):
        path = tmp_path / "s.sqlite"
        strategy = solved_strategy()
        with StrategyStore(path) as writer:
            writer.put(job(), full_health(), strategy)
            # put memoizes: the writer's own reads never touch SQLite.
            assert writer.get(job(), full_health()) == strategy
            assert writer.memo_hits == 1 and writer.memo_misses == 0

        store = StrategyStore(path)  # cold memo, warm SQLite
        first = store.get(job(), full_health())   # SQLite read, memoized
        second = store.get(job(), full_health())  # memo hit
        assert first == strategy == second
        assert store.memo_misses == 1
        assert store.memo_hits == 1
        assert store.hits == 2  # memo hits still count as store hits
        store.close()

    def test_memo_dropped_with_evicted_row(self, tmp_path):
        store = StrategyStore(tmp_path / "s.sqlite", max_entries=2)
        jobs = [job(goal=Rect(16 + 2 * i, 10, 19 + 2 * i, 13))
                for i in range(3)]
        for the_job in jobs:
            store.put(the_job, full_health(), solved_strategy(the_job))
        # jobs[0] was evicted from SQLite; the memo must agree.
        assert store.get(jobs[0], full_health()) is None
        assert store.get(jobs[1], full_health()) is not None
        store.close()

    def test_threaded_readers_share_one_connection(self, tmp_path):
        store = StrategyStore(tmp_path / "s.sqlite")
        jobs = [job(goal=Rect(16 + 2 * i, 10, 19 + 2 * i, 13))
                for i in range(3)]
        expected = {}
        for the_job in jobs:
            strategy = solved_strategy(the_job)
            store.put(the_job, full_health(), strategy)
            expected[the_job.key()] = strategy

        import threading

        errors: list = []

        def hammer() -> None:
            try:
                for _ in range(25):
                    for the_job in jobs:
                        got = store.get(the_job, full_health())
                        assert got == expected[the_job.key()]
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        reads = 4 * 25 * len(jobs)
        assert store.hits == reads
        assert store.memo_hits + store.memo_misses == reads
        assert store.memo_hits >= reads - len(jobs)
        store.close()

    def test_wal_mode_enabled_on_disk_stores(self, tmp_path):
        store = StrategyStore(tmp_path / "s.sqlite")
        mode = store._conn.execute("PRAGMA journal_mode").fetchone()[0]
        assert mode == "wal"
        timeout = store._conn.execute("PRAGMA busy_timeout").fetchone()[0]
        assert timeout == 5000
        store.close()
