"""Tests for declarative SLO parsing, evaluation, and error budgets."""

from __future__ import annotations

import math

import pytest

from repro.obs.slo import (
    SloSpec,
    SloTracker,
    evaluate,
    format_results,
    parse_slo,
)


class TestParse:
    def test_stat_form(self):
        spec = parse_slo("p99(synthesis.total_ms) < 50")
        assert spec == SloSpec(metric="synthesis.total_ms", op="<",
                               threshold=50.0, stat="p99", target=1.0)
        assert spec.key == "synthesis.total_ms.p99"
        assert str(spec) == "p99(synthesis.total_ms) < 50"

    def test_bare_form(self):
        spec = parse_slo("completion_probability == 1.0")
        assert spec.metric == "completion_probability"
        assert spec.stat is None
        assert spec.key == "completion_probability"
        assert spec.op == "==" and spec.threshold == 1.0

    def test_target_suffix(self):
        spec = parse_slo("p90(lat_ms) <= 25 @ 0.95")
        assert spec.target == 0.95
        assert str(spec) == "p90(lat_ms) <= 25 @ 0.95"

    def test_whitespace_and_scientific_notation(self):
        spec = parse_slo("  mean( vi.iters )  >=  1e-3  @  0.9  ")
        assert spec.metric == "vi.iters" and spec.stat == "mean"
        assert spec.threshold == pytest.approx(1e-3)
        assert spec.target == 0.9

    @pytest.mark.parametrize("op", ["<", "<=", ">", ">=", "==", "!="])
    def test_all_operators(self, op):
        assert parse_slo(f"x {op} 1").op == op

    @pytest.mark.parametrize("bad", [
        "", "just words", "p99(x)", "x < ", "< 5", "x ~ 5",
        "x < 5 @ 2.0", "x < 5 @ -0.1", "p99(x y) < 5",
    ])
    def test_rejects_garbage(self, bad):
        with pytest.raises(ValueError, match="cannot parse SLO"):
            parse_slo(bad)

    def test_rejects_unknown_stat(self):
        with pytest.raises(ValueError, match="unknown SLO statistic"):
            parse_slo("p42(x) < 5")


class TestCheck:
    def test_none_and_nan_never_comply(self):
        spec = parse_slo("x != 5")
        assert spec.check(None) is False
        assert spec.check(math.nan) is False
        assert spec.check(4.0) is True

    def test_comparison_semantics(self):
        assert parse_slo("x < 5").check(5.0) is False
        assert parse_slo("x <= 5").check(5.0) is True
        assert parse_slo("x == 1").check(1.0) is True


class TestEvaluate:
    def test_mixed_outcomes(self):
        specs = [parse_slo("hits >= 1"), parse_slo("p99(lat_ms) < 10"),
                 parse_slo("ghost > 0")]
        snapshot = {"hits": 3.0, "lat_ms.p99": 25.0}
        results = evaluate(specs, snapshot)
        assert [r.ok for r in results] == [True, False, False]
        assert results[0].value == 3.0 and results[0].reason is None
        assert results[1].reason == "violated"
        assert results[2].value is None and results[2].reason == "missing"
        record = results[2].to_record()
        assert record["ok"] is False and record["reason"] == "missing"
        assert record["metric"] == "ghost"


class TestTracker:
    def test_strict_target_binary_budget(self):
        tracker = SloTracker([parse_slo("x < 10")])
        tracker.observe({"x": 5.0})
        tracker.observe({"x": 6.0})
        assert tracker.ok()
        (entry,) = tracker.summary()
        assert entry["windows"] == 2 and entry["violations"] == 0
        assert entry["budget_remaining"] == 1.0
        tracker.observe({"x": 50.0})
        assert not tracker.ok()
        (entry,) = tracker.summary()
        assert entry["violations"] == 1
        assert entry["budget_remaining"] == 0.0
        assert entry["last_value"] == 50.0

    def test_budgeted_target_burn_math(self):
        # target 0.9 -> 10% of windows may violate
        tracker = SloTracker([parse_slo("x < 10 @ 0.9")])
        for _ in range(19):
            tracker.observe({"x": 1.0})
        tracker.observe({"x": 99.0})  # 1/20 violating = 5% burn of 10%
        (entry,) = tracker.summary()
        assert entry["compliance"] == pytest.approx(0.95)
        assert entry["budget_remaining"] == pytest.approx(0.5)
        assert entry["ok"] is True
        for _ in range(2):
            tracker.observe({"x": 99.0})  # 3/22 > 10% allowed
        (entry,) = tracker.summary()
        assert entry["budget_remaining"] < 0.0
        assert entry["ok"] is False and not tracker.ok()

    def test_missing_metric_counts_as_violation(self):
        tracker = SloTracker([parse_slo("ghost > 0")])
        tracker.observe({})
        assert not tracker.ok()

    def test_no_windows_is_ok(self):
        assert SloTracker([parse_slo("x < 1")]).ok()


class TestFormat:
    def test_one_shot_results(self):
        specs = [parse_slo("hits >= 1"), parse_slo("ghost > 0")]
        text = format_results(evaluate(specs, {"hits": 2.0}))
        assert "ok " in text and "hits >= 1" in text and "[observed 2]" in text
        assert "VIOLATED" in text and "(missing)" in text

    def test_tracker_summary(self):
        tracker = SloTracker([parse_slo("x < 10 @ 0.9")])
        tracker.observe({"x": 99.0})
        text = format_results(tracker.summary())
        assert "1/1 windows violated" in text
        assert "budget remaining" in text
