"""Fault-tolerance tests for the synthesis engine.

Covers the failure taxonomy (pool / transient / payload / deadline), the
rebuild-with-backoff path, permanent degradation to the synchronous path,
the deterministic chaos harness, store corruption tolerance, and the
headline invariant: a run that degrades mid-assay routes bit-identically
to a run that never had a pool.

Worker kills are real (``os.kill``/``os._exit``) — the point is to
exercise the genuine ``BrokenProcessPool`` machinery, not a mock of it.
Chaos delays keep workers predictably busy so kills land mid-payload; the
teardown helpers SIGKILL leftover sleepers so no test waits one out.
"""

from __future__ import annotations

import os
import signal
import time
from concurrent.futures import CancelledError
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool

import numpy as np
import pytest

from repro import obs
from repro.bioassay.library import EVALUATION_BIOASSAYS
from repro.bioassay.planner import plan
from repro.biochip.chip import MedaChip
from repro.biochip.simulator import MedaSimulator
from repro.biochip.trace import ExecutionTrace
from repro.core.baseline import AdaptiveRouter
from repro.core.routing_job import RoutingJob, zone
from repro.core.scheduler import HybridScheduler
from repro.core.strategy import strategy_from_synthesis
from repro.core.synthesis import synthesize
from repro.engine import StrategyStore, SynthesisEngine, resolve_workers
from repro.engine import chaos
from repro.engine.chaos import ChaosConfig, ChaosInjectedError, ChaosInjector
from repro.engine.faults import FaultKind, RetryPolicy, classify_failure
from repro.geometry.rect import Rect

WORKERS = int(os.environ.get("REPRO_TEST_WORKERS", "2"))

W, H = 30, 20


def job(start=Rect(2, 2, 5, 5), goal=Rect(20, 10, 23, 13)) -> RoutingJob:
    return RoutingJob(start, goal, zone(start, goal, W, H))


def other_job() -> RoutingJob:
    return job(start=Rect(4, 12, 7, 15))


def full_health() -> np.ndarray:
    return np.full((W, H), 3)


def kill_workers(engine: SynthesisEngine) -> None:
    """SIGKILL every live worker of the engine's pool (tests only)."""
    procs = list(engine._executor._processes.values())
    assert procs, "pool has no worker processes to kill"
    for proc in procs:
        os.kill(proc.pid, signal.SIGKILL)


def wait_done(future, timeout=60.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if future.done():
            return
        time.sleep(0.02)
    pytest.fail("future never completed")


def wait_running(future, timeout=60.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if future.running() or future.done():
            return
        time.sleep(0.02)
    pytest.fail("future never started running")


@pytest.fixture(autouse=True)
def chaos_cleanup():
    """No chaos config may leak into the next test (or its pool workers)."""
    yield
    chaos.deactivate()


class TestClassification:
    def test_failure_taxonomy(self):
        assert classify_failure(BrokenProcessPool()) is FaultKind.POOL
        assert classify_failure(CancelledError()) is FaultKind.TRANSIENT
        assert classify_failure(FuturesTimeoutError()) is FaultKind.TRANSIENT
        assert classify_failure(OSError("broken pipe")) is FaultKind.TRANSIENT
        assert classify_failure(ValueError("payload bug")) is FaultKind.PAYLOAD
        assert classify_failure(ChaosInjectedError("x")) is FaultKind.PAYLOAD

    def test_retry_policy_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(rebuild_budget=-1)
        with pytest.raises(ValueError):
            RetryPolicy(deadline_ms=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base_s=-0.1)

    def test_backoff_is_capped_exponential(self):
        policy = RetryPolicy(backoff_base_s=0.05, backoff_cap_s=0.4)
        assert policy.backoff(0) == pytest.approx(0.05)
        assert policy.backoff(1) == pytest.approx(0.10)
        assert policy.backoff(2) == pytest.approx(0.20)
        assert policy.backoff(3) == pytest.approx(0.40)
        assert policy.backoff(10) == pytest.approx(0.40)


class TestWorkerCountValidation:
    def test_resolve_workers_rejects_negative(self):
        with pytest.raises(ValueError):
            resolve_workers(-1)

    def test_engine_rejects_negative_workers(self):
        with pytest.raises(ValueError):
            SynthesisEngine(workers=-1)

    def test_resolve_workers_zero_means_all_cores(self):
        assert resolve_workers(0) == (os.cpu_count() or 1)

    def test_cli_rejects_negative_workers(self):
        from repro.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main(["run", "--workers", "-1"])
        assert excinfo.value.code == 2

    def test_cli_rejects_bad_chaos_spec(self, capsys):
        from repro.cli import main

        assert main(["run", "--chaos", "kill=2.0", "--max-cycles", "1"]) == 2
        assert "bad --chaos spec" in capsys.readouterr().err


class TestBrokenPoolRecovery:
    def test_submit_survives_killed_pool(self):
        """The scheduler-loop guard: submitting against a pool whose
        workers were killed must decline, classify, and rebuild — never
        raise into the caller."""
        chaos.activate(ChaosConfig(seed=1, delay_p=1.0, delay_ms=10_000))
        policy = RetryPolicy(retries=0, rebuild_budget=1, backoff_base_s=0.0)
        eng = SynthesisEngine(workers=WORKERS, policy=policy)
        try:
            assert eng.submit(job(), full_health())
            spec = next(iter(eng._pending.values()))
            kill_workers(eng)
            wait_done(spec.future)  # the executor noticed the dead worker
            assert not eng.submit(other_job(), full_health())
            assert eng.errors == 1
            assert eng.faults.get("pool") == 1
            assert eng.rebuilds == 1
            assert eng.pooled and not eng.degraded
            # The fresh pool accepts work again.
            assert eng.submit(other_job(), full_health())
        finally:
            eng._kill_worker_processes()  # reap chaos-delayed sleepers
            eng.close()

    def test_submit_survives_externally_shutdown_executor(self):
        eng = SynthesisEngine(workers=WORKERS)
        try:
            eng._executor.shutdown(wait=True)
            assert not eng.submit(job(), full_health())
            assert eng.faults.get("transient") == 1
        finally:
            eng.close()

    def test_take_classifies_broken_pool_and_resubmits_survivors(self):
        """A pool breakage fails every in-flight future at once; consuming
        one classifies the fault, rebuilds the pool, and resubmits the
        other speculations within their retry budgets."""
        chaos.activate(ChaosConfig(seed=4, delay_p=1.0, delay_ms=10_000))
        policy = RetryPolicy(retries=2, rebuild_budget=2, backoff_base_s=0.0)
        eng = SynthesisEngine(workers=WORKERS, policy=policy)
        try:
            assert eng.submit(job(), full_health())
            assert eng.submit(other_job(), full_health())
            specs = list(eng._pending.values())
            kill_workers(eng)
            for spec in specs:
                wait_done(spec.future)
            status, strategy = eng.take(job(), full_health())
            assert (status, strategy) == ("error", None)
            assert eng.faults.get("pool") == 1
            assert eng.rebuilds == 1
            assert eng.retried == 1  # the survivor rode along
            inflight = eng._by_job.get(("", other_job().key()))
            assert inflight is not None
            assert eng._pending[inflight].attempts == 2
        finally:
            eng._kill_worker_processes()
            eng.close()

    def test_degrades_when_rebuild_budget_exhausted(self):
        journal = obs.RunJournal()
        obs.configure(journal=journal)
        chaos.activate(ChaosConfig(seed=2, delay_p=1.0, delay_ms=10_000))
        policy = RetryPolicy(retries=0, rebuild_budget=0, backoff_base_s=0.0)
        eng = SynthesisEngine(workers=WORKERS, policy=policy)
        try:
            assert eng.submit(job(), full_health())
            spec = next(iter(eng._pending.values()))
            kill_workers(eng)
            wait_done(spec.future)
            status, strategy = eng.take(job(), full_health())
            assert (status, strategy) == ("error", None)
            assert eng.degraded and not eng.pooled
            assert eng.rebuilds == 0  # the budget never allowed one
            assert eng.counters()["degraded"] == 1
            # Degraded engines decline silently — the scheduler loop must
            # keep running on the synchronous path.
            assert not eng.submit(other_job(), full_health())
            events = [record["event"] for record in journal.records]
            assert "engine.fault" in events
            assert "engine.degraded" in events
        finally:
            eng._kill_worker_processes()
            eng.close()
            obs.shutdown()


class TestPayloadFaults:
    def test_payload_error_classified_and_not_retried(self):
        """A deterministic payload error must not burn the rebuild budget:
        the pool stays up and the caller falls back synchronously."""
        chaos.activate(ChaosConfig(seed=3, raise_p=1.0))
        eng = SynthesisEngine(workers=WORKERS)
        try:
            assert eng.submit(job(), full_health())
            spec = next(iter(eng._pending.values()))
            wait_done(spec.future)
            status, strategy = eng.take(job(), full_health())
            assert (status, strategy) == ("error", None)
            assert eng.faults.get("payload") == 1
            assert eng.rebuilds == 0 and eng.retried == 0
            assert eng.pooled and not eng.degraded
            # The key is freed: the synchronous fallback's library entry
            # wins, but a fresh speculation is not blocked.
            assert eng.submit(job(), full_health())
        finally:
            eng.close()


class TestDeadlines:
    def test_deadline_reaps_hung_worker_and_rebuilds(self):
        chaos.activate(ChaosConfig(seed=5, delay_p=1.0, delay_ms=30_000))
        policy = RetryPolicy(
            retries=0, rebuild_budget=2, backoff_base_s=0.0, deadline_ms=150.0
        )
        eng = SynthesisEngine(workers=WORKERS, policy=policy)
        try:
            assert eng.submit(job(), full_health())
            spec = next(iter(eng._pending.values()))
            wait_running(spec.future)  # the worker picked the payload up...
            time.sleep(policy.deadline_ms / 1e3 + 0.05)  # ...and is overdue
            status, strategy = eng.take(job(), full_health())
            assert (status, strategy) == ("deadline", None)
            assert eng.deadline_reaps == 1
            assert eng.rebuilds == 1  # hung worker forced a rebuild
            assert eng.pooled and not eng.degraded
            assert eng.submit(job(), full_health())
        finally:
            eng._kill_worker_processes()
            eng.close()


class TestStoreFaults:
    def _strategy(self):
        return strategy_from_synthesis(job(), synthesize(job(), full_health()))

    def test_use_after_close_is_counted_noop(self, tmp_path):
        store = StrategyStore(tmp_path / "s.sqlite")
        strategy = self._strategy()
        store.put(job(), full_health(), strategy)
        store.close()
        assert store.get(job(), full_health()) is None
        store.put(job(), full_health(), strategy)  # must not raise
        assert store.use_after_close == 2
        assert store.counters()["use_after_close"] == 2

    def test_chaos_corruption_tolerated(self, tmp_path):
        chaos.activate(ChaosConfig(seed=7, store_p=1.0))
        with StrategyStore(tmp_path / "s.sqlite") as store:
            store.put(job(), full_health(), self._strategy())
            assert len(store) == 1  # the garbled row did land on disk
            assert store.get(job(), full_health()) is None
            assert store.corrupt == 1
            assert len(store) == 0  # ...and was deleted on first read
            assert store.usable  # degraded rows don't take the store down
            # With chaos off the same write round-trips.
            chaos.deactivate()
            store.put(job(), full_health(), self._strategy())
            assert store.get(job(), full_health()) is not None


class TestChaosHarness:
    def test_draws_are_deterministic_pure_functions(self):
        a = ChaosInjector(ChaosConfig(seed=1))
        b = ChaosInjector(ChaosConfig(seed=1))
        draw = a.draw("kill", "tok")
        assert 0.0 <= draw < 1.0
        assert draw == b.draw("kill", "tok")
        assert draw != a.draw("raise", "tok")  # site-addressed
        assert draw != a.draw("kill", "tok2")  # token-addressed
        assert draw != ChaosInjector(ChaosConfig(seed=2)).draw("kill", "tok")

    def test_spec_round_trip(self):
        cfg = chaos.parse_spec("kill=0.25,raise=0.1,delay=0.5:100,store=0.3,seed=9")
        assert cfg == ChaosConfig(
            seed=9, kill_p=0.25, raise_p=0.1,
            delay_p=0.5, delay_ms=100.0, store_p=0.3,
        )
        assert chaos.parse_spec(cfg.to_spec()) == cfg

    def test_invalid_specs_rejected(self):
        for bad in ("kill", "bogus=1", "kill=x", "kill=1.5", "seed=abc"):
            with pytest.raises(ValueError):
                chaos.parse_spec(bad)

    def test_worker_inject_raise_and_delay(self):
        with pytest.raises(ChaosInjectedError):
            ChaosInjector(ChaosConfig(seed=0, raise_p=1.0)).worker_inject("t")
        # A zero-probability config never fires, whatever the token.
        ChaosInjector(ChaosConfig(seed=0)).worker_inject("t")

    def test_corrupt_payload_gates_on_probability(self):
        payload = '{"a": 1, "b": 2}'
        on = ChaosInjector(ChaosConfig(seed=0, store_p=1.0))
        off = ChaosInjector(ChaosConfig(seed=0))
        assert off.corrupt_payload("k", payload) == payload
        garbled = on.corrupt_payload("k", payload)
        assert garbled != payload
        with pytest.raises(ValueError):
            import json

            json.loads(garbled)

    def test_env_propagation_and_seed_override(self):
        cfg = ChaosConfig(seed=4, kill_p=0.5)
        chaos.activate(cfg)
        # Simulate a fresh worker process: module globals reset, config
        # rebuilt from the environment alone.
        chaos._injector = None
        chaos._loaded_from_env = False
        rebuilt = chaos.injector()
        assert rebuilt is not None and rebuilt.config == cfg
        # REPRO_CHAOS_SEED overrides the spec's seed (the CI matrix knob).
        os.environ[chaos.ENV_SEED] = "99"
        chaos._injector = None
        chaos._loaded_from_env = False
        assert chaos.injector().config.seed == 99
        chaos.deactivate()
        assert chaos.injector() is None


class TestDegradedDeterminism:
    def test_mid_assay_degrade_matches_serial_trace(self):
        """The headline invariant: an engine whose pool dies mid-assay and
        degrades must route bit-identically to a run with no pool at all."""
        graph = plan(EVALUATION_BIOASSAYS["covid-rat"](), 40, 24)

        def execute(engine):
            chip = MedaChip.sample(
                40, 24, np.random.default_rng(11),
                tau_range=(0.80, 0.90), c_range=(400.0, 900.0),
            )
            router = AdaptiveRouter(engine=engine)
            scheduler = HybridScheduler(graph, router, 40, 24)
            trace = ExecutionTrace()
            sim = MedaSimulator(chip, np.random.default_rng(12), trace=trace)
            if engine is not None and engine.pooled:
                scheduler.presynthesize(chip.health())
            result = sim.run(scheduler, max_cycles=600)
            return result, trace

        serial_result, serial_trace = execute(None)

        # Every worker payload dies instantly; the zero rebuild budget
        # degrades the engine on the first classified pool fault.
        chaos.activate(ChaosConfig(seed=13, kill_p=1.0))
        engine = SynthesisEngine(
            workers=WORKERS,
            policy=RetryPolicy(retries=0, rebuild_budget=0, backoff_base_s=0.0),
        )
        try:
            degraded_result, degraded_trace = execute(engine)
        finally:
            chaos.deactivate()
            engine.close()

        assert engine.degraded  # the scenario actually happened
        assert degraded_result.success == serial_result.success
        assert degraded_result.cycles == serial_result.cycles
        assert degraded_result.resyntheses == serial_result.resyntheses
        assert len(degraded_trace.frames) == len(serial_trace.frames)
        for sf, df in zip(serial_trace.frames, degraded_trace.frames):
            assert df.cycle == sf.cycle
            assert df.droplets == sf.droplets
            assert df.moving == sf.moving
