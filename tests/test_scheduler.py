"""Tests for the hybrid scheduler (Algorithm 3) and the simulator loop."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bioassay.ops import MO, MOType
from repro.bioassay.seqgraph import SequencingGraph
from repro.biochip.chip import MedaChip
from repro.biochip.recorder import ActuationRecorder
from repro.biochip.simulator import MedaSimulator
from repro.core.baseline import AdaptiveRouter, BaselineRouter
from repro.core.scheduler import HybridScheduler, MOPhase

W, H = 40, 24


def healthy_chip_40(rng: np.random.Generator) -> MedaChip:
    return MedaChip.sample(W, H, rng, tau_range=(0.95, 0.99),
                           c_range=(5000, 9000))


def run(graph: SequencingGraph, seed: int = 0, max_cycles: int = 400,
        router=None, chip: MedaChip | None = None, recorder=None):
    rng = np.random.default_rng(seed)
    chip = chip if chip is not None else healthy_chip_40(rng)
    router = router if router is not None else AdaptiveRouter()
    scheduler = HybridScheduler(graph, router, W, H)
    sim = MedaSimulator(chip, np.random.default_rng(seed + 1), recorder=recorder)
    return sim.run(scheduler, max_cycles), scheduler


class TestSingleOps:
    def test_dispense_then_out(self):
        graph = SequencingGraph("g", [
            MO("d", MOType.DIS, size=(4, 4), locs=((8.5, 2.5),)),
            MO("o", MOType.OUT, pre=("d",), locs=((37.5, 12.5),)),
        ])
        result, scheduler = run(graph)
        assert result.success
        assert scheduler.mo_phase("d") is MOPhase.DONE
        assert not scheduler.droplets  # the droplet left the chip

    def test_dispense_latency_depends_on_edge_distance(self):
        near = SequencingGraph("g", [
            MO("d", MOType.DIS, size=(4, 4), locs=((8.5, 2.5),)),
            MO("o", MOType.OUT, pre=("d",), locs=((8.5, 2.5),)),
        ])
        _, sched = run(near)
        activated, done = sched.mo_cycles("d")
        assert done > activated  # the reservoir-to-chip latency

    def test_mag_holds_droplet(self):
        graph = SequencingGraph("g", [
            MO("d", MOType.DIS, size=(4, 4), locs=((8.5, 2.5),)),
            MO("m", MOType.MAG, pre=("d",), locs=((20.5, 12.5),), hold_cycles=6),
            MO("o", MOType.OUT, pre=("m",), locs=((37.5, 12.5),)),
        ])
        result, scheduler = run(graph)
        assert result.success
        # the mag op held for its hold time on top of the routing
        activated, done = scheduler.mo_cycles("m")
        assert done - activated >= 6

    def test_mix_merges_and_produces_one_droplet(self):
        graph = SequencingGraph("g", [
            MO("a", MOType.DIS, size=(4, 4), locs=((8.5, 2.5),)),
            MO("b", MOType.DIS, size=(4, 4), locs=((8.5, 21.5),)),
            MO("m", MOType.MIX, pre=("a", "b"), locs=((20.5, 12.5),),
               hold_cycles=3),
            MO("o", MOType.OUT, pre=("m",), locs=((37.5, 12.5),)),
        ])
        result, scheduler = run(graph)
        assert result.success

    def test_split_produces_two_droplets(self):
        graph = SequencingGraph("g", [
            MO("d", MOType.DIS, size=(4, 4), locs=((8.5, 2.5),)),
            MO("s", MOType.SPT, pre=("d",),
               locs=((14.5, 12.5), (28.5, 12.5)), hold_cycles=2),
            MO("o1", MOType.OUT, pre=("s",), pre_output=(0,),
               locs=((37.5, 6.5),)),
            MO("o2", MOType.OUT, pre=("s",), pre_output=(1,),
               locs=((37.5, 18.5),)),
        ])
        result, scheduler = run(graph)
        assert result.success

    def test_dilute_four_jobs(self):
        graph = SequencingGraph("g", [
            MO("a", MOType.DIS, size=(4, 4), locs=((8.5, 2.5),)),
            MO("b", MOType.DIS, size=(4, 4), locs=((8.5, 21.5),)),
            MO("dl", MOType.DLT, pre=("a", "b"),
               locs=((18.5, 12.5), (30.5, 12.5)), hold_cycles=3),
            MO("o1", MOType.OUT, pre=("dl",), pre_output=(0,),
               locs=((37.5, 6.5),)),
            MO("o2", MOType.OUT, pre=("dl",), pre_output=(1,),
               locs=((37.5, 18.5),)),
        ])
        result, scheduler = run(graph)
        assert result.success


class TestSchedulerMechanics:
    def two_route_graph(self) -> SequencingGraph:
        return SequencingGraph("g", [
            MO("a", MOType.DIS, size=(4, 4), locs=((8.5, 2.5),)),
            MO("b", MOType.DIS, size=(4, 4), locs=((8.5, 21.5),)),
            MO("oa", MOType.OUT, pre=("a",), locs=((37.5, 6.5),)),
            MO("ob", MOType.OUT, pre=("b",), locs=((37.5, 18.5),)),
        ])

    def test_unplaced_graph_rejected(self):
        graph = SequencingGraph("g", [MO("d", MOType.DIS, size=(4, 4))])
        with pytest.raises(ValueError):
            HybridScheduler(graph, AdaptiveRouter(), W, H)

    def test_plan_targets_include_all_droplets(self):
        graph = self.two_route_graph()
        scheduler = HybridScheduler(graph, AdaptiveRouter(), W, H)
        chip = healthy_chip_40(np.random.default_rng(0))
        sim = MedaSimulator(chip, np.random.default_rng(1))
        # run a handful of cycles manually and check invariants
        for _ in range(20):
            health = chip.health()
            plan = scheduler.plan_cycle(health)
            if plan.complete or plan.failure:
                break
            for did in scheduler.droplets:
                assert did in plan.targets
            for did, rect in plan.targets.items():
                assert rect.xa >= 1 and rect.xb <= W
            from repro.core.droplet import actuation_matrix

            u = actuation_matrix(list(plan.targets.values()), W, H)
            chip.apply_actuation(u)
            from repro.core.actions import ACTIONS
            from repro.core.transitions import MatrixForceField, sample_outcome

            field = MatrixForceField(chip.true_force())
            moved = {
                did: sample_outcome(
                    scheduler.droplets[did], ACTIONS[name], field,
                    np.random.default_rng(42),
                ).delta
                for did, name in plan.moves.items()
            }
            scheduler.apply_outcomes(moved)

    def test_resyntheses_counted(self):
        # Fast-degrading chip: health changes mid-route force resyntheses.
        # The degradation budget is low enough that fingerprint changes
        # hit every route regardless of which of several value-equivalent
        # routes the solver's tie-breaking picks.
        rng = np.random.default_rng(5)
        chip = MedaChip.sample(W, H, rng, tau_range=(0.5, 0.6),
                               c_range=(4, 8))
        graph = self.two_route_graph()
        result, scheduler = run(graph, chip=chip, max_cycles=600)
        assert scheduler.resyntheses > 0

    def test_baseline_never_resynthesizes(self):
        rng = np.random.default_rng(5)
        chip = MedaChip.sample(W, H, rng, tau_range=(0.3, 0.5),
                               c_range=(30, 60))
        result, scheduler = run(
            self.two_route_graph(), chip=chip, max_cycles=600,
            router=BaselineRouter(W, H),
        )
        assert scheduler.resyntheses == 0

    def test_unknown_droplet_outcome_rejected(self):
        graph = self.two_route_graph()
        scheduler = HybridScheduler(graph, AdaptiveRouter(), W, H)
        with pytest.raises(KeyError):
            scheduler.apply_outcomes({99: None})  # type: ignore[dict-item]


class TestFailureModes:
    def test_max_cycles_failure(self):
        graph = SequencingGraph("g", [
            MO("d", MOType.DIS, size=(4, 4), locs=((8.5, 2.5),)),
            MO("o", MOType.OUT, pre=("d",), locs=((37.5, 12.5),)),
        ])
        result, _ = run(graph, max_cycles=3)
        assert not result.success
        assert result.failure == "max-cycles"

    def test_dead_chip_no_route(self):
        """A chip whose mid-section dies immediately: the adaptive router
        sees health 0 across the wall and reports no strategy."""
        from repro.degradation.faults import FaultPlan

        faulty = np.zeros((W, H), dtype=bool)
        faulty[18:22, :] = True
        fail_at = np.full((W, H), np.inf)
        fail_at[faulty] = 0  # dead from the first actuation... of count 0
        chip = MedaChip(
            tau=np.full((W, H), 0.99), c=np.full((W, H), 9000.0),
            fault_plan=FaultPlan(faulty=faulty, fail_at=fail_at),
        )
        graph = SequencingGraph("g", [
            MO("d", MOType.DIS, size=(4, 4), locs=((8.5, 12.5),)),
            MO("o", MOType.OUT, pre=("d",), locs=((37.5, 12.5),)),
        ])
        result, _ = run(graph, chip=chip, max_cycles=200)
        assert not result.success
        assert result.failure in ("no-route", "max-cycles")

    def test_execution_result_reports_actuations(self):
        graph = SequencingGraph("g", [
            MO("d", MOType.DIS, size=(4, 4), locs=((8.5, 2.5),)),
            MO("o", MOType.OUT, pre=("d",), locs=((37.5, 12.5),)),
        ])
        result, _ = run(graph)
        assert result.success
        assert result.total_actuations > 0


class TestRecorder:
    def test_recorder_captures_every_cycle(self):
        graph = SequencingGraph("g", [
            MO("d", MOType.DIS, size=(4, 4), locs=((8.5, 2.5),)),
            MO("o", MOType.OUT, pre=("d",), locs=((37.5, 12.5),)),
        ])
        recorder = ActuationRecorder(W, H)
        result, _ = run(graph, recorder=recorder)
        assert result.success
        assert recorder.num_cycles == result.cycles
        assert recorder.actuation_counts().sum() > 0

    def test_vectors_shape(self):
        rec = ActuationRecorder(4, 3)
        rec.record(np.ones((4, 3)))
        rec.record(np.zeros((4, 3)))
        assert rec.vectors().shape == (4, 3, 2)

    def test_packed_vectors_round_trip(self):
        rng = np.random.default_rng(7)
        rec = ActuationRecorder(5, 4)
        for _ in range(19):  # deliberately not a multiple of 8
            rec.record((rng.random((5, 4)) < 0.4).astype(np.uint8))
        packed, n = rec.packed_vectors()
        assert n == 19
        assert packed.shape == (5, 4, 3)
        assert packed.dtype == np.uint8
        dense = ActuationRecorder.unpack_vectors(packed, n)
        np.testing.assert_array_equal(dense, rec.vectors())

    def test_empty_recorder_rejects_vectors(self):
        with pytest.raises(ValueError):
            ActuationRecorder(4, 3).vectors()
        with pytest.raises(ValueError):
            ActuationRecorder(4, 3).packed_vectors()

    def test_wrong_shape_rejected(self):
        with pytest.raises(ValueError):
            ActuationRecorder(4, 3).record(np.ones((3, 4)))
