"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.biochip.chip import MedaChip
from repro.core.routing_job import RoutingJob
from repro.geometry.rect import Rect


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic RNG; tests share the seed so failures reproduce."""
    return np.random.default_rng(12345)


@pytest.fixture
def full_health() -> np.ndarray:
    """A 60x30 health matrix at full health (b=2 -> level 3)."""
    return np.full((60, 30), 3)


@pytest.fixture
def small_job() -> RoutingJob:
    """A small 4x4-droplet routing job inside a 20x16 zone."""
    return RoutingJob(
        start=Rect(3, 3, 6, 6),
        goal=Rect(14, 10, 17, 13),
        hazard=Rect(1, 1, 20, 16),
    )


@pytest.fixture
def healthy_chip(rng: np.random.Generator) -> MedaChip:
    """A 30x20 chip with slow degradation (effectively healthy in tests)."""
    return MedaChip.sample(
        30, 20, rng, tau_range=(0.95, 0.99), c_range=(5000.0, 9000.0)
    )
