"""Shared fixtures for the test suite + hypothesis profiles.

CI exports ``HYPOTHESIS_PROFILE=ci`` to derandomize property tests: a
fixed derivation seed makes every run draw the same examples (a red CI is
reproducible locally with the same profile), and ``print_blob=True`` puts
the ``@reproduce_failure`` blob straight into the failure output.  The
example database under ``.hypothesis/`` is uploaded as an artifact on
failure so shrunk counterexamples survive the ephemeral runner.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import settings

from repro.biochip.chip import MedaChip
from repro.core.routing_job import RoutingJob
from repro.geometry.rect import Rect

settings.register_profile("default", print_blob=True)
settings.register_profile("ci", derandomize=True, print_blob=True)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic RNG; tests share the seed so failures reproduce."""
    return np.random.default_rng(12345)


@pytest.fixture
def full_health() -> np.ndarray:
    """A 60x30 health matrix at full health (b=2 -> level 3)."""
    return np.full((60, 30), 3)


@pytest.fixture
def small_job() -> RoutingJob:
    """A small 4x4-droplet routing job inside a 20x16 zone."""
    return RoutingJob(
        start=Rect(3, 3, 6, 6),
        goal=Rect(14, 10, 17, 13),
        hazard=Rect(1, 1, 20, 16),
    )


@pytest.fixture
def healthy_chip(rng: np.random.Generator) -> MedaChip:
    """A 30x20 chip with slow degradation (effectively healthy in tests)."""
    return MedaChip.sample(
        30, 20, rng, tau_range=(0.95, 0.99), c_range=(5000.0, 9000.0)
    )
