"""Tests for the scan chain, multi-edge health sensing and the op cycle."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.sensing import (
    MultiEdgeSenseConfig,
    OperationalCycle,
    ScanChain,
    multi_edge_health,
)
from repro.degradation.model import quantize_health


class TestScanChain:
    def test_load_round_trip(self):
        chain = ScanChain(8)
        pattern = [1, 0, 1, 1, 0, 0, 1, 0]
        chain.load(pattern)
        assert chain.snapshot() == pattern

    def test_second_load_shifts_out_first(self):
        chain = ScanChain(4)
        chain.load([1, 1, 0, 0])
        out = chain.load([0, 0, 0, 0])
        assert out == [1, 1, 0, 0]

    def test_shift_count_tracks_latency(self):
        chain = ScanChain(16)
        chain.load([0] * 16)
        assert chain.shift_count == 16

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            ScanChain(4).load([1, 0])

    def test_bad_bit_rejected(self):
        with pytest.raises(ValueError):
            ScanChain(4).shift_in(2)

    def test_zero_length_rejected(self):
        with pytest.raises(ValueError):
            ScanChain(0)


class TestMultiEdgeSensing:
    def test_two_bit_edges_count(self):
        cfg = MultiEdgeSenseConfig(bits=2)
        assert len(cfg.edge_times()) == 3

    def test_edges_monotone(self):
        # Higher D charges faster, so bucket-boundary crossing times grow
        # with the bucket index k (edge k sits at D = k / 2^b).
        cfg = MultiEdgeSenseConfig(bits=3)
        edges = cfg.edge_times()
        assert all(a > b for a, b in zip(edges, edges[1:]))

    def test_sense_boundaries(self):
        cfg = MultiEdgeSenseConfig(bits=2)
        assert cfg.sense(1.0) == 3
        assert cfg.sense(0.0) == 0

    @given(st.floats(0.0, 1.0), st.integers(1, 4))
    @settings(max_examples=60, deadline=None)
    def test_circuit_matches_quantization(self, d: float, bits: int):
        """The staggered-edge circuit reproduces H = floor(2^b D) exactly
        (up to floating-point at bucket boundaries)."""
        cfg = MultiEdgeSenseConfig(bits=bits)
        circuit = cfg.sense(d)
        model = quantize_health(d, bits=bits)
        assert abs(circuit - model) <= (1 if _near_boundary(d, bits) else 0)

    def test_matrix_health(self):
        d = np.array([[1.0, 0.6], [0.3, 0.0]])
        h = multi_edge_health(d, bits=2)
        assert h.tolist() == [[3, 2], [1, 0]]

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            MultiEdgeSenseConfig(bits=2).sense(1.2)

    def test_bits_mismatch_rejected(self):
        with pytest.raises(ValueError):
            multi_edge_health(np.zeros((2, 2)), bits=3,
                              config=MultiEdgeSenseConfig(bits=2))


def _near_boundary(d: float, bits: int, tol: float = 1e-9) -> bool:
    scaled = d * (1 << bits)
    return abs(scaled - round(scaled)) < tol


class TestOperationalCycle:
    def test_cycle_produces_health_and_droplet_maps(self):
        cycle = OperationalCycle(width=4, height=3)
        actuation = np.zeros((4, 3))
        degradation = np.ones((4, 3))
        occupancy = np.zeros((4, 3), dtype=bool)
        occupancy[1, 1] = True
        y, h = cycle.run(actuation, degradation, occupancy)
        assert y[1, 1] == 1 and y.sum() == 1
        assert (h == 3).all()
        assert cycle.cycles_run == 1

    def test_shape_mismatch_rejected(self):
        cycle = OperationalCycle(width=4, height=3)
        with pytest.raises(ValueError):
            cycle.run(np.zeros((3, 4)), np.ones((4, 3)), np.zeros((4, 3), bool))

    def test_scan_latency_two_full_loads_per_cycle(self):
        cycle = OperationalCycle(width=4, height=3)
        z = np.zeros((4, 3))
        cycle.run(z, np.ones((4, 3)), np.zeros((4, 3), bool))
        assert cycle._chain.shift_count == 2 * 4 * 3
