"""Tests for the droplet model: actuation matrices and shape fitting."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.droplet import (
    OFF_CHIP,
    actuation_matrix,
    fit_droplet_shape,
    is_off_chip,
    size_error,
    within_chip,
)
from repro.geometry.rect import Rect


class TestOffChip:
    def test_sentinel(self):
        assert is_off_chip(OFF_CHIP)
        assert not is_off_chip(Rect(1, 1, 4, 4))

    def test_sentinel_not_on_chip(self):
        assert not within_chip(OFF_CHIP, 60, 30)


class TestWithinChip:
    def test_inside(self):
        assert within_chip(Rect(1, 1, 60, 30), 60, 30)

    def test_outside_east(self):
        assert not within_chip(Rect(58, 1, 61, 4), 60, 30)

    def test_outside_origin(self):
        assert not within_chip(Rect(0, 1, 3, 4), 60, 30)


class TestActuationMatrix:
    def test_example1_pattern(self):
        """Example 1: U_ij = 1 exactly on [3,7] x [2,5] for delta=(3,2,7,5)."""
        u = actuation_matrix([Rect(3, 2, 7, 5)], 10, 8)
        expected = np.zeros((10, 8), dtype=np.uint8)
        expected[2:7, 1:5] = 1
        np.testing.assert_array_equal(u, expected)
        assert u.sum() == 20

    def test_multiple_droplets_union(self):
        u = actuation_matrix([Rect(1, 1, 2, 2), Rect(5, 5, 6, 6)], 8, 8)
        assert u.sum() == 8

    def test_off_chip_contributes_nothing(self):
        u = actuation_matrix([OFF_CHIP], 8, 8)
        assert u.sum() == 0

    def test_out_of_bounds_rejected(self):
        with pytest.raises(ValueError):
            actuation_matrix([Rect(7, 7, 9, 9)], 8, 8)


class TestShapeFitting:
    def test_table4_mix_area_32(self):
        """Table IV: area 32 fits as 6x5 with 6.3% size error."""
        shape = fit_droplet_shape(32)
        assert shape == (6, 5)
        assert size_error(shape, 32) == pytest.approx(0.0625)

    def test_perfect_square(self):
        assert fit_droplet_shape(16) == (4, 4)
        assert size_error((4, 4), 16) == 0.0

    def test_area_two(self):
        assert fit_droplet_shape(2) == (2, 1)

    def test_half_of_4x4(self):
        # A split of a 4x4 droplet: area 8 fits as 3x3 (error 1/8).
        shape = fit_droplet_shape(8)
        assert shape in ((3, 3), (3, 2))
        assert abs(shape[0] * shape[1] - 8) <= 1

    def test_side_difference_constraint(self):
        for area in range(1, 200):
            w, h = fit_droplet_shape(area)
            assert abs(w - h) <= 1
            assert w >= h

    def test_invalid_area_rejected(self):
        with pytest.raises(ValueError):
            fit_droplet_shape(0)

    def test_size_error_requires_positive_area(self):
        with pytest.raises(ValueError):
            size_error((2, 2), 0)

    @given(st.floats(1.0, 400.0))
    def test_fit_minimizes_error(self, area: float):
        w, h = fit_droplet_shape(area)
        err = abs(w * h - area)
        # No other |w-h|<=1 shape does strictly better.
        for hh in range(1, 25):
            for ww in (hh, hh + 1):
                assert abs(ww * hh - area) >= err - 1e-9
