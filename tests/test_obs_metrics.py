"""Tests for the typed metric instruments and the repro.perf facade."""

from __future__ import annotations

import math

import pytest

from repro import perf
from repro.obs.metrics import (
    DEFAULT_COUNT_BUCKETS,
    Histogram,
    MetricsRegistry,
)


@pytest.fixture(autouse=True)
def clean_registry():
    perf.reset()
    yield
    perf.reset()


class TestHistogramBuckets:
    def test_observations_land_in_the_right_buckets(self):
        h = Histogram("h", bounds=(1.0, 2.0, 5.0, 10.0))
        for v in (0.5, 1.0, 1.5, 4.9, 5.0, 9.0, 100.0):
            h.observe(v)
        # bounds are inclusive upper bounds; 100 goes to overflow
        assert h.bucket_counts == [2, 1, 2, 1, 1]
        assert h.count == 7
        assert h.sum == pytest.approx(0.5 + 1.0 + 1.5 + 4.9 + 5.0 + 9.0 + 100.0)
        assert h.min == 0.5
        assert h.max == 100.0

    def test_bounds_must_increase(self):
        with pytest.raises(ValueError):
            Histogram("h", bounds=(5.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", bounds=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", bounds=())

    def test_mean(self):
        h = Histogram("h", bounds=(10.0,))
        h.observe(2.0)
        h.observe(4.0)
        assert h.mean == pytest.approx(3.0)


class TestHistogramQuantiles:
    def test_empty_histogram_is_nan(self):
        h = Histogram("h", bounds=(1.0, 2.0))
        assert math.isnan(h.quantile(0.5))
        assert math.isnan(h.mean)
        summary = h.summary()
        assert summary["count"] == 0
        assert math.isnan(summary["p50"])

    def test_single_value_is_exact_at_every_quantile(self):
        # Clamping to [min, max] makes a 1-sample histogram exact even
        # though the value sits strictly inside its bucket.
        h = Histogram("h", bounds=(1.0, 2.0, 5.0, 10.0))
        h.observe(3.3)
        for q in (0.0, 0.25, 0.5, 0.9, 0.99, 1.0):
            assert h.quantile(q) == pytest.approx(3.3)

    def test_interpolates_within_bucket(self):
        h = Histogram("h", bounds=(10.0, 20.0))
        for _ in range(10):
            h.observe(15.0)  # all mass in the (10, 20] bucket
        h.observe(1.0)  # one sample below, to de-clamp the low end
        # p50 rank lands mid-bucket: between 10 and 20
        assert 10.0 <= h.quantile(0.5) <= 20.0

    def test_overflow_bucket_reports_observed_max(self):
        h = Histogram("h", bounds=(1.0,))
        h.observe(0.5)
        h.observe(500.0)
        assert h.quantile(0.99) == 500.0
        assert h.quantile(1.0) == 500.0

    def test_monotone_in_q(self):
        h = Histogram("h", bounds=(1, 2, 5, 10, 20, 50))
        for v in (0.3, 1.5, 1.7, 3.0, 4.0, 8.0, 12.0, 45.0, 60.0):
            h.observe(v)
        qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0]
        values = [h.quantile(q) for q in qs]
        assert values == sorted(values)
        assert values[0] >= h.min and values[-1] <= h.max

    def test_invalid_quantile_rejected(self):
        h = Histogram("h", bounds=(1.0,))
        h.observe(0.5)
        with pytest.raises(ValueError):
            h.quantile(-0.1)
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_percentiles_keys(self):
        h = Histogram("h", bounds=(1.0, 10.0))
        h.observe(0.5)
        assert set(h.percentiles()) == {"p50", "p90", "p99"}


class TestRegistry:
    def test_counter_gauge_histogram_snapshot(self):
        reg = MetricsRegistry()
        reg.incr("events", 3)
        reg.set_gauge("depth", 7)
        reg.observe("lat_ms", 2.0, bounds=(1.0, 10.0))
        snap = reg.snapshot()
        assert snap["events"] == 3
        assert snap["depth"] == 7
        assert snap["lat_ms.count"] == 1
        assert snap["lat_ms.p50"] == pytest.approx(2.0)

    def test_name_collision_across_types_rejected(self):
        reg = MetricsRegistry()
        reg.incr("x")
        with pytest.raises(ValueError):
            reg.observe("x", 1.0)
        with pytest.raises(ValueError):
            reg.set_gauge("x", 1.0)

    def test_reset_clears_everything(self):
        reg = MetricsRegistry()
        reg.incr("a")
        reg.observe("b_ms", 1.0)
        reg.reset()
        assert reg.snapshot() == {}


class TestPerfFacade:
    def test_incr_and_get_shims(self):
        perf.incr("shim.counter")
        perf.incr("shim.counter", 2)
        assert perf.get("shim.counter") == 3
        assert perf.get("never.touched") == 0

    def test_timer_shim_accumulates_seconds(self):
        with perf.timer("shim.seconds"):
            pass
        assert perf.get("shim.seconds") >= 0
        assert "shim.seconds" in perf.snapshot()

    def test_observe_and_percentiles(self):
        for v in (1.0, 2.0, 3.0):
            perf.observe("lat_ms", v)
        pcts = perf.percentiles("lat_ms")
        assert set(pcts) == {"p50", "p90", "p99"}
        assert pcts["p99"] <= 3.0
        assert perf.percentiles("missing") == {}

    def test_count_buckets_for_integers(self):
        perf.observe("route.len", 3, bounds=DEFAULT_COUNT_BUCKETS)
        assert perf.snapshot()["route.len.count"] == 1

    def test_report_renders_histograms(self):
        perf.incr("a.count")
        perf.observe("b_ms", 1.5)
        text = perf.report()
        assert "a.count" in text
        assert "b_ms.p50" in text
