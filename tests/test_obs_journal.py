"""Tests for the run journal: sinks, round-trip, report, end-to-end runs."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import obs, perf
from repro.bioassay.ops import MO, MOType
from repro.bioassay.seqgraph import SequencingGraph
from repro.biochip.chip import MedaChip
from repro.biochip.simulator import MedaSimulator
from repro.cli import main
from repro.core.baseline import AdaptiveRouter
from repro.core.scheduler import HybridScheduler
from repro.obs.journal import (
    JOURNAL_SCHEMA_VERSION,
    RunJournal,
    iter_events,
    read_journal,
    validate_event,
)
from repro.obs.report import format_report, summarize_journal

W, H = 40, 24


@pytest.fixture(autouse=True)
def clean_obs():
    obs.shutdown()
    perf.reset()
    yield
    obs.shutdown()
    perf.reset()


def two_route_graph() -> SequencingGraph:
    return SequencingGraph("g", [
        MO("a", MOType.DIS, size=(4, 4), locs=((8.5, 2.5),)),
        MO("b", MOType.DIS, size=(4, 4), locs=((8.5, 21.5),)),
        MO("m", MOType.MIX, pre=("a", "b"), locs=((20.5, 12.5),),
           hold_cycles=3),
        MO("o", MOType.OUT, pre=("m",), locs=((37.5, 12.5),)),
    ])


def run_journaled(chip: MedaChip, seed: int = 0, max_cycles: int = 600):
    scheduler = HybridScheduler(two_route_graph(), AdaptiveRouter(), W, H)
    sim = MedaSimulator(chip, np.random.default_rng(seed + 1))
    return sim.run(scheduler, max_cycles), scheduler


class TestRunJournalSinks:
    def test_memory_sink_and_seq(self):
        journal = RunJournal()
        journal.emit("alpha", cycle=1, value=3)
        journal.emit("beta", extra=(1, 2))
        records = journal.records
        assert [r["seq"] for r in records] == [1, 2]
        assert records[0] == {"seq": 1, "schema_version": 1, "event": "alpha",
                              "cycle": 1, "value": 3}
        assert records[1]["extra"] == [1, 2]  # jsonable coercion
        assert "cycle" not in records[1]
        assert len(journal) == 2

    def test_file_sink_flushes_per_event(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal = RunJournal(path)
        journal.emit("one")
        # readable before close: a crashed run still leaves a journal
        assert json.loads(path.read_text())["event"] == "one"
        journal.emit("two")
        journal.close()
        assert [r["event"] for r in read_journal(path)] == ["one", "two"]

    def test_callable_sink(self):
        seen = []
        journal = RunJournal(seen.append)
        journal.emit("x", cycle=4)
        assert seen[0]["event"] == "x" and seen[0]["cycle"] == 4

    def test_read_journal_rejects_garbage(self, tmp_path):
        # Garbage *before* the end is corruption, not a crash artifact —
        # still rejected (only a trailing partial line is tolerated).
        path = tmp_path / "bad.jsonl"
        path.write_text('{"seq": 1}\nnot json\n{"seq": 2}\n')
        with pytest.raises(ValueError, match="not a JSON record"):
            read_journal(path)

    def test_read_journal_tolerates_trailing_partial_line(self, tmp_path):
        # A run killed mid-write leaves a truncated last line; the reader
        # warns and returns every complete record instead of raising.
        path = tmp_path / "crashed.jsonl"
        path.write_text('{"seq": 1, "event": "a"}\n{"seq": 2, "ev')
        with pytest.warns(RuntimeWarning, match="partial"):
            records = read_journal(path)
        assert [r["seq"] for r in records] == [1]

    def test_read_journal_strict_rejects_trailing_partial(self, tmp_path):
        path = tmp_path / "crashed.jsonl"
        path.write_text('{"seq": 1, "event": "a"}\n{"seq": 2, "ev')
        with pytest.raises(ValueError, match="not a JSON record"):
            read_journal(path, strict=True)


class TestValidateEvent:
    def test_emitted_records_validate(self):
        journal = RunJournal()
        journal.emit("synthesis", cycle=3, ms=1.5)
        record = journal.records[0]
        assert record["schema_version"] == JOURNAL_SCHEMA_VERSION
        assert validate_event(record) is record  # returns the record

    def test_versionless_legacy_record_accepted(self):
        # Pre-versioning journals have no schema_version field; version 0
        # stays in the supported set so old journals still replay.
        validate_event({"seq": 1, "event": "synthesis"})

    @pytest.mark.parametrize("record, problem", [
        ("not a dict", "must be a dict"),
        ({"event": "x"}, "positive int 'seq'"),
        ({"seq": 0, "event": "x"}, "positive int 'seq'"),
        ({"seq": True, "event": "x"}, "positive int 'seq'"),
        ({"seq": 1}, "non-empty 'event'"),
        ({"seq": 1, "event": ""}, "non-empty 'event'"),
        ({"seq": 1, "event": "x", "schema_version": 99},
         "unsupported journal schema_version"),
        ({"seq": 1, "event": "x", "cycle": -1}, "non-negative int"),
        ({"seq": 1, "event": "x", "cycle": 1.5}, "non-negative int"),
    ])
    def test_rejects_malformed(self, record, problem):
        with pytest.raises(ValueError, match=problem):
            validate_event(record)


class TestJournaledExecution:
    def test_healthy_run_emits_lifecycle_events(self):
        _, journal = obs.configure(journal=RunJournal())
        chip = MedaChip.sample(W, H, np.random.default_rng(0),
                               tau_range=(0.95, 0.99), c_range=(5000, 9000))
        result, scheduler = run_journaled(chip)
        assert result.success
        records = journal.records
        events = {r["event"] for r in records}
        assert {"run.start", "run.end", "mo.activated", "mo.done",
                "mo.merged", "synthesis"} <= events
        # every activated MO eventually reports done
        activated = {r["mo"] for r in iter_events(records, "mo.activated")}
        done = {r["mo"] for r in iter_events(records, "mo.done")}
        assert activated == done == {"a", "b", "m", "o"}
        (end,) = iter_events(records, "run.end")
        assert end["success"] is True
        assert end["cycles"] == result.cycles

    def test_degrading_run_journals_resyntheses_with_fingerprints(self):
        _, journal = obs.configure(journal=RunJournal())
        chip = MedaChip.sample(W, H, np.random.default_rng(5),
                               tau_range=(0.5, 0.6), c_range=(8, 15))
        result, scheduler = run_journaled(chip)
        assert scheduler.resyntheses > 0
        records = journal.records
        resyn = iter_events(records, "resynthesis")
        assert len(resyn) == scheduler.resyntheses
        for record in resyn:
            assert record["mo"] in {"a", "b", "m", "o"}
            assert record["latency_cycles"] == scheduler.resynthesis_latency
            # the trigger is a fingerprint change; after a successful replan
            # the recorded digests must differ
            if record["success"]:
                assert record["fp_before"] != record["fp_after"]
        # a chip this degraded also crosses health buckets mid-run
        assert iter_events(records, "degradation.crossing")
        assert perf.get("simulator.steps") > 0
        assert perf.get("simulator.transport_attempts") >= \
            perf.get("simulator.transport_failures")


class TestReport:
    def test_round_trip_write_then_summarize(self, tmp_path):
        path = tmp_path / "run.jsonl"
        obs.configure(journal=path)
        chip = MedaChip.sample(W, H, np.random.default_rng(5),
                               tau_range=(0.5, 0.6), c_range=(8, 15))
        result, scheduler = run_journaled(chip)
        obs.shutdown()

        summary = summarize_journal(read_journal(path))
        assert summary["runs"][0]["cycles"] == result.cycles
        assert summary["runs"][0]["success"] is result.success
        assert len(summary["resyntheses"]) == scheduler.resyntheses
        mos = summary["mos"]
        for name in ("a", "b", "m", "o"):
            assert name in mos
        done_mos = [m for m in mos.values() if m["cycles"] is not None]
        assert all(m["cycles"] >= 0 for m in done_mos)
        s = summary["synthesis_ms"]
        assert s["count"] >= scheduler.router.syntheses
        assert s["p50"] <= s["p90"] <= s["p99"] <= s["max"]

        text = format_report(summary)
        assert "per-MO cycle budget" in text
        assert "synthesis latency" in text
        if scheduler.resyntheses:
            assert "resyntheses (" in text

    def test_summarize_empty_journal(self):
        summary = summarize_journal([])
        assert summary["events"] == 0
        assert summary["runs"] == []
        text = format_report(summary)
        assert "no events" in text

    def test_percentiles_on_synthetic_events(self):
        records = [{"seq": i + 1, "event": "synthesis", "ms": float(v)}
                   for i, v in enumerate((1, 2, 3, 4, 5, 6, 7, 8, 9, 10))]
        s = summarize_journal(records)["synthesis_ms"]
        assert s["count"] == 10
        assert s["p50"] == pytest.approx(5.5)
        assert s["p90"] == pytest.approx(9.1)
        assert s["max"] == 10.0


class TestCliIntegration:
    def test_run_with_journal_trace_and_perf_then_report(
        self, tmp_path, capsys
    ):
        journal_path = tmp_path / "run.jsonl"
        trace_path = tmp_path / "run.trace.json"
        code = main([
            "run", "--bioassay", "master-mix", "--width", "40",
            "--height", "24", "--seed", "3", "--max-cycles", "400",
            "--journal", str(journal_path), "--trace", str(trace_path),
            "--perf",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "perf counters:" in out
        assert "scheduler.cycles" in out

        # the chrome trace loads and has the assay -> mo -> rj hierarchy
        payload = json.loads(trace_path.read_text())
        events = payload["traceEvents"]
        assert any(e["ph"] == "X" and e["name"] == "assay" for e in events)
        assert any(e["ph"] == "b" and e["name"].startswith("mo:")
                   for e in events)
        spans = [json.loads(line) for line in
                 (tmp_path / "run.trace.json.spans.jsonl")
                 .read_text().splitlines()]
        by_id = {s["id"]: s for s in spans}
        rj = next(s for s in spans if s["name"] == "rj")
        mo = by_id[rj["parent"]]
        assert mo["name"].startswith("mo:")
        assay = by_id[mo["parent"]]
        assert assay["name"] == "assay"

        # telemetry is torn down after the command
        assert obs.tracer() is None and obs.journal() is None

        code = main(["report", str(journal_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "run 1: ok" in out
        assert "per-MO cycle budget" in out
        assert "synthesis latency" in out

    def test_report_missing_file(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "nope.jsonl")]) == 2
        assert "cannot read journal" in capsys.readouterr().err
