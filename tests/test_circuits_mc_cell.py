"""Tests for the microelectrode-cell designs (Fig. 1, Fig. 2)."""

from __future__ import annotations

import pytest

from repro.circuits.mc_cell import (
    C_DEGRADED,
    C_HEALTHY,
    C_PARTIAL,
    DFF_CLOCK_SKEW_S,
    HealthSenseConfig,
    OriginalCell,
    ProposedCell,
    default_proposed_cell,
    health_capacitance,
    transistor_states,
)


class TestTransistorStates:
    def test_charge_phase(self):
        # ACT=0, ACT_b=1, SEL=1: T1, T2, T4 on; T3 off (Sec. III-B).
        s = transistor_states(act=0, act_b=1, sel=1)
        assert (s.t1, s.t2, s.t3, s.t4) == (True, True, False, True)

    def test_discharge_phase(self):
        # ACT=0, ACT_b=0, SEL=1: T1, T3, T4 on; T2 off.
        s = transistor_states(act=0, act_b=0, sel=1)
        assert (s.t1, s.t2, s.t3, s.t4) == (True, False, True, True)

    def test_actuation_disables_sense_path(self):
        s = transistor_states(act=1, act_b=0, sel=0)
        assert not any((s.t1, s.t2, s.t3, s.t4))

    def test_invalid_level_rejected(self):
        with pytest.raises(ValueError):
            transistor_states(act=2, act_b=0, sel=1)


class TestHealthCapacitance:
    def test_pristine_is_healthy_capacitance(self):
        assert health_capacitance(1.0) == pytest.approx(C_HEALTHY)

    def test_dead_is_degraded_capacitance(self):
        assert health_capacitance(0.0) == pytest.approx(C_DEGRADED)

    def test_midpoint_is_partial(self):
        assert health_capacitance(0.5) == pytest.approx(C_PARTIAL)

    def test_monotone_decreasing_in_health(self):
        assert health_capacitance(0.9) < health_capacitance(0.2)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            health_capacitance(1.5)


class TestCalibratedTiming:
    def test_fig2_codes(self):
        """The calibrated circuit resolves Table I's three classes into the
        Fig. 2 codes: healthy '11', partially degraded '01', dead '00'."""
        cfg = HealthSenseConfig.calibrated()
        assert cfg.sample_bits(C_HEALTHY) == (1, 1)
        assert cfg.sample_bits(C_PARTIAL) == (0, 1)
        assert cfg.sample_bits(C_DEGRADED) == (0, 0)

    def test_class_crossings_separated_by_one_skew(self):
        cfg = HealthSenseConfig.calibrated()
        t_h = cfg.crossing_time(C_HEALTHY)
        t_p = cfg.crossing_time(C_PARTIAL)
        t_d = cfg.crossing_time(C_DEGRADED)
        assert t_p - t_h == pytest.approx(DFF_CLOCK_SKEW_S, rel=1e-9)
        assert t_d - t_p == pytest.approx(DFF_CLOCK_SKEW_S, rel=1e-9)

    def test_skew_is_five_nanoseconds(self):
        # Fig. 2: the added DFF's clock edge arrives 5 ns after the original.
        assert DFF_CLOCK_SKEW_S == 5e-9

    def test_bad_calibration_rejected(self):
        with pytest.raises(ValueError):
            HealthSenseConfig.calibrated(c_healthy=C_PARTIAL, c_partial=C_HEALTHY)


class TestProposedCell:
    def test_health_codes_over_degradation_range(self):
        cell = default_proposed_cell()
        assert cell.sense_health(1.0) == (1, 1)
        assert cell.sense_health(0.5) == (0, 1)
        assert cell.sense_health(0.0) == (0, 0)

    def test_health_level_integers(self):
        cell = default_proposed_cell()
        assert cell.health_level(1.0) == 3
        assert cell.health_level(0.5) == 1
        assert cell.health_level(0.0) == 0

    def test_code_10_never_produced(self):
        # The charging waveform is monotone, so the original DFF can never
        # latch 1 while the (later-clocked) added DFF latches 0.
        cell = default_proposed_cell()
        for d in (0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0):
            assert cell.sense_health(d) != (1, 0)


class TestOriginalCell:
    def test_detects_droplet(self):
        cell = OriginalCell(HealthSenseConfig.calibrated())
        assert cell.sense_droplet(droplet_present=True) == 1

    def test_no_false_positive_without_droplet(self):
        cell = OriginalCell(HealthSenseConfig.calibrated())
        assert cell.sense_droplet(droplet_present=False) == 0

    def test_degradation_does_not_fake_droplet(self):
        # Attofarad-scale degradation shifts must not trip the droplet edge.
        cell = OriginalCell(HealthSenseConfig.calibrated())
        assert cell.sense_droplet(droplet_present=False, degradation=0.0) == 0

    def test_detects_droplet_on_degraded_cell(self):
        cell = OriginalCell(HealthSenseConfig.calibrated())
        assert cell.sense_droplet(droplet_present=True, degradation=0.2) == 1
