"""Tests for the reconfiguration layer (``repro.reconfig``): quarantine
maps, placement remapping, scheduler wiring, and engine invalidation."""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

from repro.bioassay.library import master_mix
from repro.bioassay.ops import MOType
from repro.bioassay.planner import plan
from repro.biochip.chip import MedaChip
from repro.biochip.simulator import MedaSimulator
from repro.biochip.trace import ExecutionTrace
from repro.core.baseline import AdaptiveRouter
from repro.core.routing_job import RJHelper
from repro.core.scheduler import HybridScheduler
from repro.degradation.faults import (
    dead_cluster_plan,
    dead_column_plan,
    no_faults,
)
from repro.geometry.rect import Rect
from repro.reconfig import QuarantineMap, ReconfigPolicy, quarantine_mask
from repro.reconfig.quarantine import mask_rects

W, H = 60, 30


def _chip(fault_plan=None, prewear: float = 0.0) -> MedaChip:
    chip = MedaChip.sample(
        W, H, np.random.default_rng(0),
        tau_range=(0.95, 0.99), c_range=(5000.0, 9000.0),
        fault_plan=fault_plan,
    )
    if prewear:
        chip.actuations += prewear
    return chip


def _run(fault_plan=None, reconfig: bool = False, trace=None, seed: int = 7):
    graph = plan(master_mix(), W, H)
    policy = ReconfigPolicy(W, H) if reconfig else None
    scheduler = HybridScheduler(
        graph, AdaptiveRouter(), W, H, reconfig=policy
    )
    sim = MedaSimulator(_chip(fault_plan), np.random.default_rng(seed),
                        trace=trace)
    result = sim.run(scheduler, max_cycles=1200)
    return result, scheduler


def _digest(trace: ExecutionTrace) -> str:
    hasher = hashlib.sha256()
    for frame in trace.frames:
        hasher.update(
            repr((frame.cycle, frame.droplets, frame.moving)).encode()
        )
    return hasher.hexdigest()


class TestQuarantineMask:
    def test_healthy_chip_is_empty(self):
        health = np.full((10, 8), 3)
        assert not quarantine_mask(health).any()

    def test_dead_cell_is_quarantined_with_guard(self):
        health = np.full((10, 8), 3)
        health[5, 4] = 0
        mask = quarantine_mask(health, guard=1)
        # the dead cell plus its Chebyshev-1 ring
        assert mask[4:7, 3:6].all()
        assert mask.sum() == 9

    def test_guard_zero_marks_only_dead_cells(self):
        health = np.full((10, 8), 3)
        health[0, 0] = 0
        mask = quarantine_mask(health, guard=0)
        assert mask.sum() == 1 and mask[0, 0]

    def test_threshold_respected(self):
        health = np.full((6, 6), 1)
        assert not quarantine_mask(health, min_health=1).any()
        assert quarantine_mask(health, min_health=2).all()

    def test_guard_clipped_at_chip_edge(self):
        health = np.full((6, 6), 3)
        health[0, 0] = 0
        mask = quarantine_mask(health, guard=2)
        assert mask.shape == (6, 6)
        assert mask[:3, :3].all()


class TestMaskRects:
    def test_rects_cover_mask_exactly(self):
        rng = np.random.default_rng(5)
        for _ in range(20):
            mask = rng.random((12, 9)) < 0.3
            rebuilt = np.zeros_like(mask)
            for r in mask_rects(mask):
                assert not rebuilt[r.xa - 1:r.xb, r.ya - 1:r.yb].any(), \
                    "rectangles must be disjoint"
                rebuilt[r.xa - 1:r.xb, r.ya - 1:r.yb] = True
            assert np.array_equal(rebuilt, mask)

    def test_axis_aligned_block_is_one_rect(self):
        mask = np.zeros((20, 10), dtype=bool)
        mask[3:9, 2:8] = True
        assert mask_rects(mask) == (Rect(4, 3, 9, 8),)

    def test_empty_mask(self):
        assert mask_rects(np.zeros((5, 5), dtype=bool)) == ()


class TestQuarantineMap:
    def test_overlaps_clamps_out_of_range(self):
        mask = np.zeros((10, 10), dtype=bool)
        mask[0, 0] = True
        qmap = QuarantineMap(mask, 1)
        assert qmap.overlaps(Rect(-3, -3, 1, 1))
        assert not qmap.overlaps(Rect(50, 50, 60, 60))

    def test_cells_counts_mask(self):
        mask = np.zeros((10, 10), dtype=bool)
        mask[2:4, 2:4] = True
        assert QuarantineMap(mask, 1).cells == 4


class TestPolicyUpdate:
    def test_healthy_chip_stays_version_zero(self):
        policy = ReconfigPolicy(W, H)
        qmap = policy.update(np.full((W, H), 3))
        assert qmap.version == 0 and qmap.cells == 0

    def test_version_bumps_on_change_only(self):
        policy = ReconfigPolicy(W, H)
        health = np.full((W, H), 3)
        health[10, 10] = 0
        v1 = policy.update(health).version
        assert policy.update(health).version == v1  # unchanged -> cached
        health[30, 20] = 0
        assert policy.update(health).version == v1 + 1

    def test_placement_tainted_checks_goals_and_outputs(self):
        policy = ReconfigPolicy(W, H)
        health = np.full((W, H), 3)
        health[9:13, 18:22] = 0  # the first mixer slot of master-mix
        policy.update(health)
        helper = RJHelper(W, H)
        graph = plan(master_mix(), W, H)
        decomposed = {
            mo.name: helper.decompose(mo) for mo in graph.mos
        }
        mixers = [mo.name for mo in graph.mos if mo.type is MOType.MIX]
        tainted = [
            name for name, dec in decomposed.items()
            if policy.placement_tainted(dec)
        ]
        assert mixers[0] in tainted

    def test_remap_moves_off_quarantine(self):
        policy = ReconfigPolicy(W, H)
        health = np.full((W, H), 3)
        health[6:14, 15:23] = 0
        policy.update(health)
        helper = RJHelper(W, H)
        graph = plan(master_mix(), W, H)
        mixer = next(mo for mo in graph.mos if mo.type is MOType.MIX)
        for mo in graph.mos:
            helper.decompose(mo)
        new = policy.remap(mixer, mixer.locs[0], health, helper)
        assert new is not None
        assert new.mo.locs != mixer.locs
        assert not policy.placement_tainted(new)

    def test_remap_returns_none_when_everything_dead(self):
        policy = ReconfigPolicy(W, H)
        health = np.zeros((W, H), dtype=int)
        policy.update(health)
        helper = RJHelper(W, H)
        graph = plan(master_mix(), W, H)
        mixer = next(mo for mo in graph.mos if mo.type is MOType.MIX)
        for mo in graph.mos:
            helper.decompose(mo)
        assert policy.remap(mixer, mixer.locs[0], health, helper) is None
        assert policy.remap_failures == 1

    def test_seed_placement_marks_used_slots(self):
        policy = ReconfigPolicy(W, H)
        graph = plan(master_mix(), W, H)
        policy.seed_placement(graph.mos)
        used = sum(policy.planner._slot_usage)
        assert used == sum(
            len(mo.locs) for mo in graph.mos
            if mo.type in (MOType.MIX, MOType.DLT, MOType.SPT, MOType.MAG)
        )


class TestSchedulerRemap:
    def test_baseline_fails_on_dead_cluster(self):
        fp = dead_cluster_plan(W, H, [(10.5, 19.5)])
        result, scheduler = _run(fp, reconfig=False)
        assert not result.success
        assert scheduler.remaps == 0

    def test_remap_survives_dead_cluster(self):
        fp = dead_cluster_plan(W, H, [(10.5, 19.5)])
        result, scheduler = _run(fp, reconfig=True)
        assert result.success
        assert scheduler.remaps >= 1
        assert any(ev.kind == "remapped" for ev in scheduler.events)

    def test_remap_survives_dead_column(self):
        fp = dead_column_plan(W, H, column=8)
        baseline, _ = _run(fp, reconfig=False)
        assert not baseline.success
        result, scheduler = _run(fp, reconfig=True)
        assert result.success
        assert scheduler.remaps >= 1

    def test_healthy_chip_trace_identity(self):
        t0, t1 = ExecutionTrace(), ExecutionTrace()
        r0, s0 = _run(no_faults(W, H), reconfig=False, trace=t0)
        r1, s1 = _run(no_faults(W, H), reconfig=True, trace=t1)
        assert r0.success and r1.success
        assert s1.remaps == 0
        assert s0.events == s1.events
        assert _digest(t0) == _digest(t1)


class TestEngineInvalidate:
    def test_invalidate_discards_speculation(self):
        from repro.core.routing_job import RoutingJob
        from repro.engine import SynthesisEngine

        engine = SynthesisEngine(workers=2)
        try:
            if not engine.pooled:
                pytest.skip("no worker pool on this runner")
            health = np.full((W, H), 3)
            job = RoutingJob(
                Rect(1, 1, 4, 4), Rect(10, 10, 13, 13),
                Rect(1, 1, 16, 16),
            )
            if not engine.submit(job, health):
                pytest.skip("speculation rejected (constrained runner)")
            assert engine.invalidate(job) is True
            assert engine.invalidate(job) is False  # already gone
        finally:
            engine.close()

    def test_invalidate_unknown_job_is_false(self):
        from repro.core.routing_job import RoutingJob
        from repro.engine import SynthesisEngine

        engine = SynthesisEngine(workers=1)
        try:
            job = RoutingJob(
                Rect(1, 1, 4, 4), Rect(5, 5, 8, 8), Rect(1, 1, 10, 10)
            )
            assert engine.invalidate(job) is False
        finally:
            engine.close()


class TestFaultScenarioBuilders:
    def test_dead_column_rejects_bad_args(self):
        with pytest.raises(ValueError):
            dead_column_plan(W, H, column=0)
        with pytest.raises(ValueError):
            dead_column_plan(W, H, column=W)  # stripe would overflow
        with pytest.raises(ValueError):
            dead_column_plan(W, H, column=5, y_span=(0, 5))

    def test_dead_column_leaves_corridors(self):
        fp = dead_column_plan(W, H, column=8)
        assert fp.faulty[:, :7].sum() == 0
        assert fp.faulty[:, -7:].sum() == 0
        assert fp.faulty.any()

    def test_dead_cluster_covers_center(self):
        fp = dead_cluster_plan(W, H, [(10.5, 19.5)], size=8)
        # the full 6x6 module pattern around the slot center plus margin
        assert fp.faulty[7:13, 16:22].all()
        assert (fp.fail_at[fp.faulty] == 0).all()
