"""Tests for the wear-distribution statistics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.wear import (
    remaining_lifetime,
    wear_concentration,
    wear_gini,
    wear_histogram,
)
from repro.biochip.chip import MedaChip
from repro.degradation.faults import FaultInjector, FaultMode


class TestGini:
    def test_uniform_wear_is_zero(self):
        assert wear_gini(np.full((10, 10), 7)) == pytest.approx(0.0, abs=1e-9)

    def test_concentrated_wear_near_one(self):
        acts = np.zeros((20, 20))
        acts[0, 0] = 1000
        assert wear_gini(acts) > 0.99

    def test_empty_and_zero(self):
        assert wear_gini(np.zeros((5, 5))) == 0.0

    def test_active_only_excludes_idle_cells(self):
        acts = np.zeros((10, 10))
        acts[:2, :] = 50  # 20 cells uniformly worn
        assert wear_gini(acts, active_only=True) == pytest.approx(0.0, abs=1e-9)
        assert wear_gini(acts) > 0.5

    @given(st.lists(st.integers(0, 1000), min_size=2, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_gini_in_unit_interval(self, values):
        g = wear_gini(np.asarray(values, dtype=float))
        assert -1e-9 <= g <= 1.0


class TestConcentration:
    def test_all_on_top_cell(self):
        acts = np.zeros(100)
        acts[0] = 10
        assert wear_concentration(acts, q=0.01) == 1.0

    def test_uniform(self):
        acts = np.ones(100)
        assert wear_concentration(acts, q=0.1) == pytest.approx(0.1)

    def test_invalid_q(self):
        with pytest.raises(ValueError):
            wear_concentration(np.ones(4), q=0.0)


class TestHistogram:
    def test_buckets_partition_cells(self):
        acts = np.array([0, 0, 5, 20, 75, 300, 2000])
        rows = wear_histogram(acts)
        assert sum(count for _, count in rows) == acts.size

    def test_custom_edges(self):
        rows = wear_histogram(np.array([1, 2, 3]), edges=[0, 2])
        assert rows[0] == ("[0, 2)", 1)
        assert rows[1] == (">= 2", 2)


class TestRemainingLifetime:
    def test_fresh_chip_has_budget(self, rng):
        chip = MedaChip.sample(8, 8, rng, tau_range=(0.5, 0.9),
                               c_range=(100, 300))
        life = remaining_lifetime(chip)
        assert (life > 0).all()

    def test_budget_shrinks_with_use(self, rng):
        chip = MedaChip.sample(8, 8, rng, tau_range=(0.5, 0.9),
                               c_range=(100, 300))
        before = remaining_lifetime(chip)
        chip.apply_actuation(np.full((8, 8), 10, dtype=int))
        after = remaining_lifetime(chip)
        assert (after < before).all()

    def test_lifetime_prediction_consistent_with_health(self, rng):
        chip = MedaChip.sample(6, 6, rng, tau_range=(0.6, 0.8),
                               c_range=(50, 100))
        life = remaining_lifetime(chip, min_health=1)
        # Actuate one cell past its predicted budget: its health must fall
        # below the threshold.
        i, j = 2, 3
        n = int(np.ceil(life[i, j])) + 1
        u = np.zeros((6, 6), dtype=int)
        u[i, j] = 1
        for _ in range(n):
            chip.apply_actuation(u)
        assert chip.health()[i, j] < 1 or chip.degradation()[i, j] < 0.25 + 1e-9

    def test_faulty_cells_capped_by_sudden_failure(self, rng):
        plan = FaultInjector(FaultMode.UNIFORM, fraction=1.0,
                             fail_range=(5, 5)).inject(4, 4, rng)
        chip = MedaChip(tau=np.full((4, 4), 0.99), c=np.full((4, 4), 5000.0),
                        fault_plan=plan)
        life = remaining_lifetime(chip)
        assert (life <= 5).all()

    def test_invalid_threshold(self, rng):
        chip = MedaChip.sample(4, 4, rng)
        with pytest.raises(ValueError):
            remaining_lifetime(chip, min_health=4)
