"""Tests for the probabilistic outcome kernels (Sec. V-B, Example 3)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.actions import ACTIONS, ALL_ACTIONS
from repro.core.transitions import (
    MatrixForceField,
    UniformForceField,
    leg_probability,
    outcome_distribution,
    sample_outcome,
)
from repro.geometry.rect import Rect

DELTA = Rect(3, 2, 7, 5)


def example3_field() -> MatrixForceField:
    """The Fig. 10 scenario: explicit frontier forces for a_NE on DELTA.

    Example 3 lists the *degradation-like* values that are averaged
    directly: D(8, 3:6) = (0.6, 0.5, 0.8, 0.9) and
    D(4:8, 6) = (0.9, 0.4, 0.9, 0.7, 0.9).  We inject them as forces.
    """
    forces = np.ones((12, 10))
    for j, v in zip(range(3, 7), (0.6, 0.5, 0.8, 0.9)):
        forces[8 - 1, j - 1] = v
    for i, v in zip(range(4, 9), (0.9, 0.4, 0.9, 0.7, 0.9)):
        forces[i - 1, 6 - 1] = v
    return MatrixForceField(forces)


class TestForceFields:
    def test_matrix_field_lookup_one_based(self):
        forces = np.zeros((4, 3))
        forces[0, 0] = 0.5
        field = MatrixForceField(forces)
        assert field.force(1, 1) == 0.5

    def test_matrix_field_zero_off_chip(self):
        field = MatrixForceField(np.ones((4, 3)))
        assert field.force(0, 1) == 0.0
        assert field.force(5, 1) == 0.0
        assert field.force(2, 4) == 0.0

    def test_matrix_field_validates_range(self):
        with pytest.raises(ValueError):
            MatrixForceField(np.full((2, 2), 1.5))

    def test_uniform_field(self):
        field = UniformForceField(10, 8, value=0.7)
        assert field.force(5, 5) == 0.7
        assert field.force(11, 5) == 0.0


class TestExample3:
    """Example 3: p(NE) = 0.76 * 0.7 = 0.532, p(N) = 0.168, p(E) = 0.228."""

    def test_leg_probabilities(self):
        field = example3_field()
        a = ACTIONS["a_NE"]
        assert leg_probability(DELTA, a, "N", field) == pytest.approx(0.76)
        assert leg_probability(DELTA, a, "E", field) == pytest.approx(0.70)

    def test_outcome_probabilities(self):
        field = example3_field()
        dist = {o.event: o.probability
                for o in outcome_distribution(DELTA, ACTIONS["a_NE"], field)}
        assert dist["NE"] == pytest.approx(0.532)
        assert dist["N"] == pytest.approx(0.76 * 0.3)   # 0.228
        assert dist["E"] == pytest.approx(0.24 * 0.7)   # 0.168
        assert dist["eps"] == pytest.approx(0.24 * 0.3)

    def test_outcome_patterns(self):
        field = example3_field()
        by_event = {o.event: o.delta
                    for o in outcome_distribution(DELTA, ACTIONS["a_NE"], field)}
        assert by_event["NE"] == Rect(4, 3, 8, 6)
        assert by_event["N"] == Rect(3, 3, 7, 6)
        assert by_event["E"] == Rect(4, 2, 8, 5)
        assert by_event["eps"] == DELTA


class TestCardinal:
    def test_full_force_is_deterministic(self):
        field = UniformForceField(20, 20, 1.0)
        outcomes = outcome_distribution(DELTA, ACTIONS["a_N"], field)
        assert len(outcomes) == 1
        assert outcomes[0].event == "N"
        assert outcomes[0].probability == 1.0

    def test_partial_force_splits_probability(self):
        field = UniformForceField(20, 20, 0.6)
        dist = {o.event: o.probability
                for o in outcome_distribution(DELTA, ACTIONS["a_E"], field)}
        assert dist["E"] == pytest.approx(0.6)
        assert dist["eps"] == pytest.approx(0.4)

    def test_chip_edge_blocks_movement(self):
        # Droplet at the west edge: a_W's frontier is off-chip, p = 0.
        edge = Rect(1, 5, 3, 8)
        field = UniformForceField(20, 20, 1.0)
        outcomes = outcome_distribution(edge, ACTIONS["a_W"], field)
        assert len(outcomes) == 1
        assert outcomes[0].event == "eps"


class TestDouble:
    def test_double_step_conditioning(self):
        field = UniformForceField(20, 20, 0.8)
        dist = {o.event: o.probability
                for o in outcome_distribution(DELTA, ACTIONS["a_NN"], field)}
        assert dist["NN"] == pytest.approx(0.8 * 0.8)
        assert dist["N"] == pytest.approx(0.8 * 0.2)
        assert dist["eps"] == pytest.approx(0.2)

    def test_double_step_against_edge(self):
        # Second hop off-chip: the droplet can advance at most one step.
        near_top = Rect(5, 16, 8, 19)  # yb+1 = 20 on-chip, second hop off
        field = UniformForceField(20, 20, 1.0)
        dist = {o.event: o.probability
                for o in outcome_distribution(near_top, ACTIONS["a_NN"], field)}
        assert "NN" not in dist
        assert dist["N"] == pytest.approx(1.0)


class TestMorphs:
    def test_morph_success_probability_is_frontier_mean(self):
        field = UniformForceField(20, 20, 0.5)
        dist = {o.event: o.probability
                for o in outcome_distribution(DELTA, ACTIONS["a_vNE"], field)}
        assert dist["morph"] == pytest.approx(0.5)
        assert dist["eps"] == pytest.approx(0.5)

    def test_morph_outcome_shape(self):
        field = UniformForceField(20, 20, 1.0)
        outcomes = outcome_distribution(DELTA, ACTIONS["a_^NW"], field)
        assert outcomes[0].delta == Rect(3, 2, 6, 6)


class TestDistributionProperties:
    @given(
        st.sampled_from(list(ALL_ACTIONS)),
        st.integers(3, 12),
        st.integers(3, 12),
        st.integers(0, 4),
        st.integers(0, 4),
        st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=80, deadline=None)
    def test_probabilities_sum_to_one(self, action, x, y, dw, dh, seed):
        rng = np.random.default_rng(seed)
        field = MatrixForceField(rng.uniform(0.0, 1.0, size=(20, 20)))
        delta = Rect(x, y, x + dw, y + dh)
        outcomes = outcome_distribution(delta, action, field)
        assert sum(o.probability for o in outcomes) == pytest.approx(1.0)
        assert all(o.probability > 0 for o in outcomes)

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=20, deadline=None)
    def test_eps_outcome_preserves_pattern(self, seed):
        rng = np.random.default_rng(seed)
        field = MatrixForceField(rng.uniform(0.1, 0.9, size=(20, 20)))
        for action in ALL_ACTIONS:
            for outcome in outcome_distribution(DELTA, action, field):
                if outcome.event == "eps":
                    assert outcome.delta == DELTA


class TestSampling:
    def test_sampling_is_seed_deterministic(self):
        field = UniformForceField(20, 20, 0.5)
        a = ACTIONS["a_NE"]
        r1 = [sample_outcome(DELTA, a, field, np.random.default_rng(9)).event
              for _ in range(1)]
        r2 = [sample_outcome(DELTA, a, field, np.random.default_rng(9)).event
              for _ in range(1)]
        assert r1 == r2

    def test_sampling_frequencies_match_distribution(self):
        field = UniformForceField(20, 20, 0.7)
        rng = np.random.default_rng(1)
        events = [sample_outcome(DELTA, ACTIONS["a_N"], field, rng).event
                  for _ in range(3000)]
        freq = events.count("N") / len(events)
        assert freq == pytest.approx(0.7, abs=0.03)
