"""Regression tests for the synthesis fast path.

Covers the pieces the perf work added on top of the fast builder: the
process-global action-spec memo, warm-started value iteration (solver- and
synthesis-level), warm-value retention in the strategy library, the perf
counter registry, and the benchmark harness fixes in ``benchmarks/common``.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import numpy as np
import pytest

from repro import perf
from repro.core.actions import ActionClass
from repro.core.baseline import AdaptiveRouter
from repro.core.fastmdp import (
    build_routing_model_fast,
    build_routing_model_scalar,
    clear_build_template_cache,
    clear_shape_action_memo,
    compiled_shape_actions,
)
from repro.core.mdp import build_routing_mdp
from repro.core.routing_job import RoutingJob
from repro.core.strategy import StrategyLibrary
from repro.core.synthesis import (
    force_field_from_health,
    synthesize,
    synthesize_with_field,
)
from repro.geometry.rect import Rect
from repro.modelcheck.compiled import (
    compile_mdp,
    solve_reach_avoid_probability,
    solve_reach_avoid_reward,
)

W, H = 24, 18


def _job() -> RoutingJob:
    return RoutingJob(
        Rect(2, 2, 4, 4), Rect(W - 5, H - 5, W - 3, H - 3), Rect(1, 1, W, H)
    )


def _random_health(seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    health = rng.integers(1, 4, size=(W, H))
    health[0:6, 0:6] = 3
    health[W - 7 :, H - 7 :] = 3
    return health


class TestShapeActionMemo:
    def test_memo_hit_on_repeat(self):
        clear_shape_action_memo()
        perf.reset()
        build_routing_model_fast(_job(), np.ones((W, H)))
        misses = perf.get("fastmdp.shape_memo.miss")
        assert misses > 0
        # Clear the template cache so the rebuild actually reaches the
        # shape-action layer (a template revalue never recompiles specs).
        clear_build_template_cache()
        build_routing_model_fast(_job(), np.ones((W, H)))
        assert perf.get("fastmdp.shape_memo.miss") == misses
        assert perf.get("fastmdp.shape_memo.hit") > 0

    def test_memo_returns_same_object(self):
        clear_shape_action_memo()
        a = compiled_shape_actions(3, 3, 3.0)
        b = compiled_shape_actions(3, 3, 3.0)
        assert a is b
        c = compiled_shape_actions(3, 3, 3.0, families=(ActionClass.CARDINAL,))
        assert c is not a

    def test_repeated_builds_identical(self):
        health = _random_health(11)
        forces = force_field_from_health(health).forces
        clear_shape_action_memo()
        first = build_routing_model_fast(_job(), forces)
        second = build_routing_model_fast(_job(), forces)  # memo warm
        assert first.num_states == second.num_states
        assert first.num_choices == second.num_choices
        assert (
            first.compiled.transitions != second.compiled.transitions
        ).nnz == 0


class TestFamilyRestrictedEquivalence:
    @pytest.mark.parametrize(
        "families",
        [
            (ActionClass.CARDINAL,),
            (ActionClass.CARDINAL, ActionClass.ORDINAL),
            (ActionClass.CARDINAL, ActionClass.WIDEN, ActionClass.HEIGHTEN),
        ],
    )
    def test_values_match_reference(self, families):
        health = _random_health(5)
        field = force_field_from_health(health)
        fast = build_routing_model_fast(_job(), field.forces, families=families)
        ref = compile_mdp(build_routing_mdp(_job(), field, families=families).mdp)
        assert fast.num_states == ref.num_states
        rf = solve_reach_avoid_reward(fast.compiled, epsilon=1e-9)
        rr = solve_reach_avoid_reward(ref, epsilon=1e-9)
        vf = rf.values[fast.compiled.initial]
        vr = rr.values[ref.initial]
        if np.isinf(vr):
            assert np.isinf(vf)
        else:
            assert vf == pytest.approx(vr, abs=1e-5)


class TestWarmStartedSolvers:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_reward_warm_equals_cold(self, seed):
        forces = force_field_from_health(_random_health(seed)).forces
        model = build_routing_model_fast(_job(), forces)
        cold = solve_reach_avoid_reward(model.compiled, epsilon=1e-9)
        # A monotone degradation of the same model: perturb forces down.
        rng = np.random.default_rng(seed + 100)
        degraded = forces * np.where(rng.random(forces.shape) < 0.1, 0.6, 1.0)
        model2 = build_routing_model_fast(_job(), degraded)
        seed_vals = np.fromiter(
            (
                dict(zip(model.states, cold.values.tolist())).get(s, 0.0)
                for s in model2.states
            ),
            dtype=float,
            count=model2.compiled.num_states,
        )
        warm = solve_reach_avoid_reward(
            model2.compiled, epsilon=1e-9, initial_values=seed_vals
        )
        ref = solve_reach_avoid_reward(model2.compiled, epsilon=1e-9)
        finite = np.isfinite(ref.values)
        assert np.isinf(warm.values[~finite]).all()
        np.testing.assert_allclose(
            warm.values[finite], ref.values[finite], atol=1e-6
        )

    def test_probability_warm_from_below_equals_cold(self):
        forces = force_field_from_health(_random_health(2)).forces
        model = build_routing_model_fast(_job(), forces)
        cold = solve_reach_avoid_probability(model.compiled, epsilon=1e-10)
        # Any seed from below (here: half the fixpoint) is sound for the
        # least-fixpoint Pmax iteration.
        warm = solve_reach_avoid_probability(
            model.compiled, epsilon=1e-10, initial_values=cold.values * 0.5
        )
        np.testing.assert_allclose(warm.values, cold.values, atol=1e-7)

    def test_warm_counters(self):
        forces = force_field_from_health(_random_health(4)).forces
        model = build_routing_model_fast(_job(), forces)
        perf.reset()
        solve_reach_avoid_reward(model.compiled)
        assert perf.get("vi.reward.cold_solves") == 1
        solve_reach_avoid_reward(
            model.compiled,
            initial_values=np.zeros(model.compiled.num_states),
        )
        assert perf.get("vi.reward.warm_solves") == 1
        assert perf.get("vi.reward.iterations") > 0


class TestWarmStartedSynthesis:
    def test_synthesize_warm_matches_cold(self):
        job = _job()
        h1 = np.full((W, H), 3, dtype=int)
        first = synthesize(job, h1, bits=2)
        assert first.strategy is not None
        h2 = _random_health(8)
        np.minimum(h2, h1, out=h2)
        cold = synthesize(job, h2, bits=2)
        warm = synthesize(job, h2, bits=2, warm_values=first.strategy.values)
        assert warm.expected_cycles == pytest.approx(
            cold.expected_cycles, abs=1e-5
        )
        for state, value in cold.strategy.values.items():
            if np.isfinite(value):
                assert warm.strategy.values[state] == pytest.approx(
                    value, abs=1e-5
                )

    def test_library_retains_warm_values(self):
        job = _job()
        library = StrategyLibrary()
        router = AdaptiveRouter(bits=2, library=library)
        h1 = np.full((W, H), 3, dtype=int)
        assert library.warm_start(job) is None
        s1 = router.plan(job, h1)
        assert s1 is not None
        assert library.warm_start(job) is s1.policy.values
        h2 = h1.copy()
        h2[10:14, 6:10] = 1
        perf.reset()
        s2 = router.plan(job, h2)
        assert s2 is not None
        assert perf.get("vi.reward.warm_solves") == 1
        assert library.warm_start(job) is s2.policy.values

    def test_uncompiled_path_ignores_warm_values(self):
        # Exotic force fields fall back to the explicit builder; warm values
        # must be silently ignored there, not crash.
        from repro.core.transitions import ForceField

        class Weird(ForceField):
            width, height = W, H

            def force(self, cell):
                return 1.0

            def rect_mean(self, rect):
                return 1.0

        job = _job()
        result = synthesize_with_field(job, Weird(), warm_values={"x": 1.0})
        assert result.strategy is not None


class TestPerfRegistry:
    def test_incr_and_reset(self):
        perf.reset()
        perf.incr("t.a")
        perf.incr("t.a", 2)
        assert perf.get("t.a") == 3
        assert perf.snapshot() == {"t.a": 3}
        perf.reset()
        assert perf.get("t.a") == 0

    def test_timer_accumulates(self):
        perf.reset()
        with perf.timer("t.block_seconds"):
            pass
        with perf.timer("t.block_seconds"):
            pass
        assert perf.get("t.block_seconds") >= 0
        assert "t.block_seconds" in perf.report()

    def test_report_empty(self):
        perf.reset()
        assert "no perf counters" in perf.report()


def _load_common(monkeypatch, tmp_path, scale):
    monkeypatch.setenv("REPRO_BENCH_SCALE", scale)
    path = Path(__file__).resolve().parent.parent / "benchmarks" / "common.py"
    spec = importlib.util.spec_from_file_location("bench_common_test", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules["bench_common_test"] = module
    try:
        spec.loader.exec_module(module)
    finally:
        sys.modules.pop("bench_common_test", None)
    module.OUT_DIR = tmp_path
    return module


class TestBenchCommon:
    def test_emit_appends_with_header(self, monkeypatch, tmp_path):
        common = _load_common(monkeypatch, tmp_path, "quick")
        common.emit("demo", "first run")
        common.emit("demo", "second run")
        text = (tmp_path / "demo.txt").read_text()
        assert "first run" in text and "second run" in text
        assert text.count("=== demo ·") == 2

    def test_scale_validation(self, monkeypatch, tmp_path):
        with pytest.warns(UserWarning, match="REPRO_BENCH_SCALE"):
            common = _load_common(monkeypatch, tmp_path, "ful")
        assert common.SCALE == "quick"

    def test_valid_scales_accepted(self, monkeypatch, tmp_path):
        assert _load_common(monkeypatch, tmp_path, "full").SCALE == "full"
        assert _load_common(monkeypatch, tmp_path, "quick").SCALE == "quick"
