"""Tests for span tracing: nesting, attributes, exports, disabled mode."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import obs, perf
from repro.core.routing_job import RoutingJob
from repro.core.synthesis import synthesize
from repro.geometry.rect import Rect
from repro.obs.tracing import NULL_SPAN, Tracer


@pytest.fixture(autouse=True)
def clean_obs():
    obs.shutdown()
    perf.reset()
    yield
    obs.shutdown()
    perf.reset()


def small_job() -> RoutingJob:
    return RoutingJob(Rect(2, 2, 4, 4), Rect(12, 9, 14, 11),
                      Rect(1, 1, 16, 12))


class TestSpanTree:
    def test_sync_nesting_sets_parent_ids(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                with tracer.span("leaf") as leaf:
                    pass
        assert outer.parent_id is None
        assert inner.parent_id == outer.span_id
        assert leaf.parent_id == inner.span_id
        assert [s.name for s in tracer.children(inner)] == ["leaf"]

    def test_attributes_at_open_and_via_set(self):
        tracer = Tracer()
        with tracer.span("s", job=(1, 2, 3)) as span:
            span.set(cache="miss", warm=True)
        assert span.attrs == {"job": (1, 2, 3), "cache": "miss", "warm": True}

    def test_durations_are_nonnegative_and_closed(self):
        tracer = Tracer()
        with tracer.span("s"):
            pass
        (span,) = tracer.spans
        assert span.end_us is not None
        assert span.duration_us >= 0

    def test_async_spans_parent_to_outermost_sync_span(self):
        tracer = Tracer()
        with tracer.span("assay") as assay:
            with tracer.span("cycle"):
                mo = tracer.begin("mo:x", start_cycle=1)
            # still open across "cycles"
            assert mo.end_us is None
            tracer.end(mo, end_cycle=5)
        assert mo.parent_id == assay.span_id
        assert mo.attrs["end_cycle"] == 5

    def test_under_reparents_sync_spans(self):
        tracer = Tracer()
        with tracer.span("assay"):
            mo = tracer.begin("mo:x")
            with tracer.under(mo):
                with tracer.span("rj.plan") as rj:
                    pass
            tracer.end(mo)
        assert rj.parent_id == mo.span_id

    def test_explicit_parent_wins(self):
        tracer = Tracer()
        with tracer.span("a") as a:
            with tracer.span("b", parent=None):
                with tracer.span("c", parent=a) as c:
                    pass
        assert c.parent_id == a.span_id


class TestExports:
    def test_jsonl_round_trip(self, tmp_path):
        tracer = Tracer()
        with tracer.span("outer", job=(1, 2)):
            with tracer.span("inner"):
                pass
        path = tmp_path / "spans.jsonl"
        tracer.export_jsonl(str(path))
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert [r["name"] for r in records] == ["outer", "inner"]
        assert records[1]["parent"] == records[0]["id"]
        assert records[0]["attrs"]["job"] == [1, 2]
        assert all(r["dur_us"] >= 0 for r in records)

    def test_chrome_export_shape(self, tmp_path):
        tracer = Tracer()
        with tracer.span("assay"):
            mo = tracer.begin("mo:x")
            tracer.end(mo)
        path = tmp_path / "trace.json"
        tracer.export_chrome(str(path))
        payload = json.loads(path.read_text())
        events = payload["traceEvents"]
        phases = sorted(e["ph"] for e in events)
        assert phases == ["M", "X", "b", "e"]
        complete = next(e for e in events if e["ph"] == "X")
        assert complete["name"] == "assay"
        assert complete["dur"] >= 0
        begin = next(e for e in events if e["ph"] == "b")
        end = next(e for e in events if e["ph"] == "e")
        assert begin["id"] == end["id"]
        assert begin["name"] == "mo:x"

    def test_open_spans_export_without_crashing(self, tmp_path):
        tracer = Tracer()
        tracer.begin("mo:open")  # never ended (e.g. failed run)
        tracer.export_chrome(str(tmp_path / "t.json"))
        tracer.export_jsonl(str(tmp_path / "t.jsonl"))
        record = json.loads((tmp_path / "t.jsonl").read_text())
        assert record["dur_us"] is None

    def test_bytes_attrs_become_hex(self):
        tracer = Tracer()
        with tracer.span("s", fp=b"\x01\xff"):
            pass
        record = tracer.spans[0].to_record()
        assert record["attrs"]["fp"] == "01ff"


class TestObsFacade:
    def test_configure_enables_and_shutdown_disables(self):
        assert not obs.enabled()
        tracer, _ = obs.configure(tracing=True)
        assert obs.enabled() and obs.tracer() is tracer
        obs.shutdown()
        assert not obs.enabled() and obs.tracer() is None

    def test_traced_decorator(self):
        tracer, _ = obs.configure(tracing=True)

        @obs.traced("my.fn", flavor="test")
        def fn(x):
            return x + 1

        assert fn(1) == 2
        (span,) = tracer.find("my.fn")
        assert span.attrs == {"flavor": "test"}

    def test_synthesis_emits_construct_and_solve_spans(self, full_health):
        tracer, _ = obs.configure(tracing=True)
        result = synthesize(small_job(), full_health[:16, :12])
        assert result.exists
        assert len(tracer.find("synthesis.construct")) == 1
        (solve,) = tracer.find("synthesis.solve")
        assert solve.attrs["iterations"] >= 1
        assert solve.attrs["states"] > 0


class TestDisabledMode:
    def test_span_returns_shared_null_object(self):
        assert obs.span("anything", key="value") is NULL_SPAN
        assert obs.begin_span("x") is None
        obs.end_span(None)  # must not raise
        with obs.span("nested") as span:
            span.set(extra=1)  # no-op, must not raise
        with obs.under(None):
            pass

    def test_traced_decorator_is_passthrough(self):
        calls = []

        @obs.traced()
        def fn():
            calls.append(1)
            return 7

        assert fn() == 7 and calls == [1]

    def test_disabled_synthesis_adds_no_spans_and_no_obs_counters(
        self, full_health
    ):
        """Regression: with tracing off, a synthesis run must leave zero
        span state and no obs-related perf counters behind."""
        perf.reset()
        result = synthesize(small_job(), full_health[:16, :12])
        assert result.exists
        assert obs.tracer() is None
        assert obs.journal() is None
        snap = perf.snapshot()
        assert not any(k.startswith(("obs.", "span.", "trace."))
                       for k in snap), snap
        # the ordinary perf metrics still flow
        assert snap["synthesis.count"] == 1

    def test_journal_event_without_journal_is_noop(self):
        obs.journal_event("anything", cycle=1, data="x")  # must not raise
        assert obs.journal() is None
