"""Differential tests: the fast (compiled) builder vs the reference builder.

``build_routing_model_fast`` must be semantically identical to
``build_routing_mdp`` + ``compile_mdp``: same state space, same choice
structure, and — most importantly — the same synthesis values for both
query types under arbitrary health matrices and obstacle sets.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fastmdp import build_routing_model_fast, extract_fast_strategy
from repro.core.mdp import build_routing_mdp
from repro.core.routing_job import RoutingJob
from repro.core.synthesis import force_field_from_health
from repro.geometry.rect import Rect
from repro.modelcheck.compiled import (
    compile_mdp,
    solve_reach_avoid_probability,
    solve_reach_avoid_reward,
)
from repro.modelcheck.strategy import extract_strategy

W, H = 24, 18


def _random_case(seed: int):
    rng = np.random.default_rng(seed)
    d = int(rng.integers(2, 5))
    xa = int(rng.integers(1, 6))
    ya = int(rng.integers(1, 6))
    gxa = int(rng.integers(10, W - d))
    gya = int(rng.integers(8, H - d))
    start = Rect(xa, ya, xa + d - 1, ya + d - 1)
    goal = Rect(gxa, gya, gxa + d - 1, gya + d - 1)
    hazard = Rect(1, 1, W, H)
    obstacles = ()
    if rng.random() < 0.5:
        ox = int(rng.integers(6, W - 8))
        oy = int(rng.integers(4, H - 6))
        obstacle = Rect(ox, oy, ox + 2, oy + 2)
        if not obstacle.adjacent_or_overlapping(start) and not (
            obstacle.adjacent_or_overlapping(goal)
        ):
            obstacles = (obstacle,)
    job = RoutingJob(start, goal, hazard, obstacles)
    health = rng.integers(0, 4, size=(W, H))
    # keep start and goal neighbourhoods alive so routes usually exist
    health[max(xa - 2, 0):xa + d + 1, max(ya - 2, 0):ya + d + 1] = 3
    health[gxa - 2:gxa + d + 1, gya - 2:gya + d + 1] = 3
    return job, health


class TestEquivalence:
    @given(st.integers(0, 500))
    @settings(max_examples=25, deadline=None)
    def test_same_model_statistics(self, seed: int):
        job, health = _random_case(seed)
        field = force_field_from_health(health)
        fast = build_routing_model_fast(job, field.forces)
        ref = build_routing_mdp(job, field)
        assert fast.num_states == ref.num_states
        assert fast.num_choices == ref.num_choices
        assert set(map(str, fast.states)) == set(map(str, ref.mdp.states))

    @given(st.integers(0, 500))
    @settings(max_examples=20, deadline=None)
    def test_same_rmin_values(self, seed: int):
        job, health = _random_case(seed)
        field = force_field_from_health(health)
        fast = build_routing_model_fast(job, field.forces)
        ref = compile_mdp(build_routing_mdp(job, field).mdp)
        rf = solve_reach_avoid_reward(fast.compiled, epsilon=1e-9)
        rr = solve_reach_avoid_reward(ref, epsilon=1e-9)
        v_fast = rf.values[fast.compiled.initial]
        v_ref = rr.values[ref.initial]
        if np.isinf(v_ref):
            assert np.isinf(v_fast)
        else:
            assert v_fast == pytest.approx(v_ref, abs=1e-5)

    @given(st.integers(0, 500))
    @settings(max_examples=20, deadline=None)
    def test_same_pmax_values(self, seed: int):
        job, health = _random_case(seed)
        field = force_field_from_health(health)
        fast = build_routing_model_fast(job, field.forces)
        ref = compile_mdp(build_routing_mdp(job, field).mdp)
        pf = solve_reach_avoid_probability(fast.compiled, epsilon=1e-9)
        pr = solve_reach_avoid_probability(ref, epsilon=1e-9)
        assert pf.values[fast.compiled.initial] == pytest.approx(
            pr.values[ref.initial], abs=1e-6
        )

    def test_strategies_agree_on_values(self):
        job, health = _random_case(7)
        field = force_field_from_health(health)
        fast = build_routing_model_fast(job, field.forces)
        ref_model = build_routing_mdp(job, field)
        rf = solve_reach_avoid_reward(fast.compiled, epsilon=1e-9)
        rr = solve_reach_avoid_reward(compile_mdp(ref_model.mdp), epsilon=1e-9)
        sf = extract_fast_strategy(fast, rf)
        sr = extract_strategy(ref_model.mdp, rr)
        # The optimal actions may differ on ties, but the achieved values
        # must match state by state.
        for state, value in sr.values.items():
            other = sf.value_at(state)
            assert other is not None
            if np.isfinite(value):
                assert other == pytest.approx(value, abs=1e-5)

    def test_action_family_filter_matches(self):
        from repro.core.actions import ActionClass

        job, health = _random_case(3)
        field = force_field_from_health(health)
        families = (ActionClass.CARDINAL, ActionClass.ORDINAL)
        fast = build_routing_model_fast(job, field.forces, families=families)
        ref = build_routing_mdp(job, field, families=families)
        assert fast.num_states == ref.num_states
        assert fast.num_choices == ref.num_choices

    def test_dispense_rejected(self):
        from repro.core.droplet import OFF_CHIP

        job = RoutingJob(OFF_CHIP, Rect(3, 3, 6, 6), Rect(1, 1, 9, 9))
        with pytest.raises(ValueError):
            build_routing_model_fast(job, np.ones((W, H)))
