"""Tests for the batched solver core and the batch presynthesis API.

The contract under test is *bit-identity*: every result produced through
``synthesize_batch`` / ``solve_reach_avoid_reward_batch`` — values,
decisions, certified bounds — must equal, bit for bit, what the per-RJ
path (``synthesize_with_field`` / ``solve_reach_avoid_reward``) returns
for the same inputs.  The batch layers (shape buckets, window-level
dedup, the cross-call value memo, the engine's batched submission) may
only ever change *when* work happens, never *what* comes out.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import perf
from repro.core.baseline import AdaptiveRouter
from repro.core.fastmdp import (
    build_dedup_token,
    build_routing_model_fast,
    clear_build_template_cache,
)
from repro.core.routing_job import RoutingJob
from repro.core.synthesis import (
    BatchRequest,
    clear_batch_value_memo,
    force_field_from_health,
    synthesize,
    synthesize_batch,
    synthesize_with_field,
)
from repro.engine import SynthesisEngine
from repro.geometry.rect import Rect
from repro.modelcheck.batch import (
    solve_reach_avoid_reward_batch,
    structural_key,
)
from repro.modelcheck.compiled import solve_reach_avoid_reward

W, H = 24, 18
FULL = Rect(1, 1, W, H)


def _jobs() -> list[RoutingJob]:
    return [
        RoutingJob(Rect(2, 2, 4, 4), Rect(W - 5, H - 5, W - 3, H - 3), FULL),
        RoutingJob(Rect(W - 4, 2, W - 2, 4), Rect(3, H - 4, 5, H - 2), FULL),
        RoutingJob(Rect(2, 8, 4, 10), Rect(W - 4, 8, W - 2, 10),
                   Rect(1, 5, W, 14)),
    ]


def _health(seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    health = rng.integers(1, 4, size=(W, H))
    health[0:6, 0:6] = 3
    health[W - 7 :, H - 7 :] = 3
    return health


def _fresh_caches() -> None:
    clear_build_template_cache()
    clear_batch_value_memo()


def _assert_result_identical(batched, solo) -> None:
    """Bit-identity of two SynthesisResults (values, decisions, cycles)."""
    assert batched.expected_cycles == solo.expected_cycles
    assert (batched.strategy is None) == (solo.strategy is None)
    if batched.strategy is not None:
        assert batched.strategy.decisions == solo.strategy.decisions
        assert batched.strategy.values == solo.strategy.values


class TestBatchedSynthesisEquivalence:
    def test_cold_batch_matches_serial_bit_identical(self):
        for health_seed in (3, 11):
            field = force_field_from_health(_health(health_seed))
            _fresh_caches()
            solo = [synthesize_with_field(job, field) for job in _jobs()]
            _fresh_caches()
            batched = synthesize_batch(
                [BatchRequest(job, field) for job in _jobs()]
            )
            for rb, rs in zip(batched, solo):
                _assert_result_identical(rb, rs)

    def test_warm_batch_matches_serial_bit_identical(self):
        jobs = _jobs()
        first = force_field_from_health(np.full((W, H), 3, dtype=int))
        _fresh_caches()
        seeds = [synthesize_with_field(job, first) for job in jobs]
        warm = [
            None if r.strategy is None else r.strategy.values for r in seeds
        ]
        second = force_field_from_health(
            np.minimum(_health(7), np.full((W, H), 3, dtype=int))
        )
        solo = [
            synthesize_with_field(job, second, warm_values=w)
            for job, w in zip(jobs, warm)
        ]
        batched = synthesize_batch(
            [
                BatchRequest(job, second, warm_values=w)
                for job, w in zip(jobs, warm)
            ]
        )
        for rb, rs in zip(batched, solo):
            _assert_result_identical(rb, rs)

    def test_single_request_batch_degenerates_to_serial(self):
        job = _jobs()[0]
        field = force_field_from_health(_health(5))
        _fresh_caches()
        solo = synthesize_with_field(job, field)
        _fresh_caches()
        (batched,) = synthesize_batch([BatchRequest(job, field)])
        _assert_result_identical(batched, solo)

    def test_exotic_field_falls_back_to_solo_path(self):
        class Weird:
            """A field with no backing matrix (duck-typed ForceField)."""

            def force(self, i, j):
                return 1.0

            def rect_mean(self, rect):
                return 1.0

        jobs = _jobs()[:2]
        matrix_field = force_field_from_health(_health(9))
        _fresh_caches()
        results = synthesize_batch(
            [
                BatchRequest(jobs[0], Weird()),
                BatchRequest(jobs[1], matrix_field),
            ]
        )
        _assert_result_identical(
            results[0], synthesize_with_field(jobs[0], Weird())
        )
        _fresh_caches()
        _assert_result_identical(
            results[1], synthesize_with_field(jobs[1], matrix_field)
        )


class TestKernelBucketing:
    def test_mixed_shape_bucket_raises(self):
        forces = force_field_from_health(_health(2)).forces
        jobs = _jobs()
        a = build_routing_model_fast(jobs[0], forces).compiled
        b = build_routing_model_fast(jobs[2], forces).compiled
        assert structural_key(a) != structural_key(b)
        with pytest.raises(ValueError, match="single shape bucket"):
            solve_reach_avoid_reward_batch([a, b])

    def test_kernel_results_bit_identical_to_solo(self):
        # Same job geometry under different force matrices: one shape
        # bucket, distinct numerics.
        job = _jobs()[0]
        models = []
        for seed in (2, 4, 6):
            clear_build_template_cache()
            forces = force_field_from_health(_health(seed)).forces
            models.append(build_routing_model_fast(job, forces).compiled)
        assert len({structural_key(cm) for cm in models}) == 1
        batched = solve_reach_avoid_reward_batch(models)
        for cm, rb in zip(models, batched):
            rs = solve_reach_avoid_reward(cm)
            assert np.array_equal(rb.values, rs.values)
            assert np.array_equal(rb.choice, rs.choice)
            assert rb.certified and rs.certified
            assert np.array_equal(rb.lower, rs.lower)
            assert np.array_equal(rb.upper, rs.upper)


class TestDedupToken:
    def test_token_requires_recorded_template(self):
        job = _jobs()[0]
        forces = force_field_from_health(_health(1)).forces
        clear_build_template_cache()
        assert build_dedup_token(job, forces) is None
        build_routing_model_fast(job, forces)
        token = build_dedup_token(job, forces)
        assert isinstance(token, bytes)
        assert build_dedup_token(job, forces) == token

    def test_out_of_window_change_preserves_token_and_model(self):
        # A job fenced to the upper-left region never reads forces near
        # the opposite corner; the token (and the built model) must not
        # depend on them.
        job = RoutingJob(
            Rect(2, 2, 4, 4), Rect(8, 8, 10, 10), Rect(1, 1, 14, 14)
        )
        clear_build_template_cache()
        forces = force_field_from_health(_health(1)).forces
        base = build_routing_model_fast(job, forces)
        token = build_dedup_token(job, forces)
        perturbed = forces.copy()
        perturbed[W - 1, H - 1] *= 0.5  # far outside the job's window
        assert build_dedup_token(job, perturbed) == token
        other = build_routing_model_fast(job, perturbed)
        assert (
            base.compiled.transitions != other.compiled.transitions
        ).nnz == 0

    def test_in_window_change_flips_token(self):
        job = _jobs()[0]
        clear_build_template_cache()
        forces = force_field_from_health(_health(1)).forces
        build_routing_model_fast(job, forces)
        token = build_dedup_token(job, forces)
        perturbed = forces.copy()
        perturbed[W // 2, H // 2] *= 0.5  # inside the full-chip hazard
        assert build_dedup_token(job, perturbed) != token


class TestBatchValueMemo:
    def test_repeat_epoch_hits_memo_with_identical_results(self):
        jobs = _jobs()
        field = force_field_from_health(_health(13))
        _fresh_caches()
        perf.reset()
        first = synthesize_batch([BatchRequest(job, field) for job in jobs])
        assert perf.get("vi.batch.memo.hits") == 0
        second = synthesize_batch([BatchRequest(job, field) for job in jobs])
        assert perf.get("vi.batch.memo.hits") == len(jobs)
        for ra, rb in zip(first, second):
            _assert_result_identical(ra, rb)

    def test_duplicate_requests_dedup_within_call(self):
        job = _jobs()[0]
        field = force_field_from_health(_health(13))
        _fresh_caches()
        # Prime the template so the dedup token exists for the job.
        synthesize_batch([BatchRequest(job, field)])
        clear_batch_value_memo()
        perf.reset()
        results = synthesize_batch(
            [BatchRequest(job, field), BatchRequest(job, field)]
        )
        assert perf.get("vi.batch.dedup") == 1
        _assert_result_identical(results[0], results[1])


class TestBatchedEquivalenceProperty:
    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_random_health_fingerprints_bit_identical(self, seed):
        jobs = _jobs()[:2]
        field = force_field_from_health(_health(seed))
        _fresh_caches()
        solo = [synthesize_with_field(job, field) for job in jobs]
        _fresh_caches()
        batched = synthesize_batch([BatchRequest(job, field) for job in jobs])
        for rb, rs in zip(batched, solo):
            _assert_result_identical(rb, rs)


def _full_health() -> np.ndarray:
    return np.full((W, H), 3, dtype=int)


class TestEngineBatchPresynthesis:
    def test_sync_fallback_serves_take_without_pool(self):
        # workers=1: no pool, so the batch is solved in-process through
        # the batched kernel and parked as completed speculations — the
        # satellite fix for presynthesize returning 0 when not pooled.
        engine = SynthesisEngine(workers=1)
        try:
            router = AdaptiveRouter(engine=engine)
            jobs = _jobs()[:2]
            health = _full_health()
            submitted = engine.presynthesize_batch(
                [(job, None) for job in jobs], health
            )
            assert submitted == 2
            assert not engine.pooled
            for job in jobs:
                plan = router.plan(job, health)
                assert plan is not None
            assert router.syntheses == 0  # both served speculatively
            assert engine.hits == 2
            for job in jobs:
                direct = synthesize(job, health)
                assert router.library.get(job, health).expected_cycles == \
                    direct.expected_cycles
        finally:
            engine.close()

    def test_pooled_batch_take_matches_synchronous(self):
        import os
        import time

        workers = int(os.environ.get("REPRO_TEST_WORKERS", "2"))
        engine = SynthesisEngine(workers=max(workers, 2))
        try:
            jobs = _jobs()[:2]
            health = _full_health()
            submitted = engine.presynthesize_batch(
                [(job, None) for job in jobs], health
            )
            assert submitted == 2
            # All members share one future (one pool task for the wave).
            futures = {
                id(spec.future) for spec in engine._pending.values()
            }
            assert len(futures) == 1
            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline:
                if all(s.future.done() for s in engine._pending.values()):
                    break
                time.sleep(0.05)
            for job in jobs:
                status, strategy = engine.take(job, health)
                assert status == "hit"
                direct = synthesize(job, health)
                assert strategy.expected_cycles == direct.expected_cycles
                assert strategy.policy.values == direct.strategy.values
        finally:
            engine.close()

    def test_stale_member_discarded_like_solo_submission(self):
        engine = SynthesisEngine(workers=1)
        try:
            job = _jobs()[0]
            health = _full_health()
            assert engine.presynthesize_batch([(job, None)], health) == 1
            degraded = _full_health()
            degraded[10, 8] = 1  # inside the hazard zone
            status, strategy = engine.take(job, degraded)
            assert (status, strategy) == ("stale", None)
            assert engine.stale == 1
        finally:
            engine.close()

    def test_in_flight_jobs_and_no_plan_keys_are_skipped(self):
        engine = SynthesisEngine(workers=1)
        try:
            job = _jobs()[0]
            health = _full_health()
            assert engine.presynthesize_batch([(job, None)], health) == 1
            # Same job again while its speculation is parked: skipped.
            assert engine.presynthesize_batch([(job, None)], health) == 0
            walled = _full_health()
            walled[12, :] = 0
            blocked = RoutingJob(
                Rect(2, 2, 4, 4), Rect(W - 5, H - 5, W - 3, H - 3), FULL
            )
            engine.take(job, health)  # consume, freeing the job key
            assert engine.presynthesize_batch([(blocked, None)], walled) == 1
            status, _ = engine.take(blocked, walled)
            assert status == "no-plan"
            # A definitive no-plan answer is never resubmitted.
            assert engine.presynthesize_batch([(blocked, None)], walled) == 0
        finally:
            engine.close()

    def test_router_prefetch_batch_filters_library_hits(self):
        engine = SynthesisEngine(workers=1)
        try:
            router = AdaptiveRouter(engine=engine)
            jobs = _jobs()[:2]
            health = _full_health()
            router.plan(jobs[0], health)  # fills the library
            submitted = router.prefetch_batch(jobs, health)
            assert submitted == 1  # only the uncovered job ships
        finally:
            engine.close()
