"""Tests for PRISM explicit-format export/import round trips."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.mdp import build_routing_mdp
from repro.core.routing_job import RoutingJob
from repro.core.synthesis import force_field_from_health
from repro.geometry.rect import Rect
from repro.modelcheck.compiled import compile_mdp, solve_reach_avoid_reward
from repro.modelcheck.export import export_prism_explicit, import_prism_explicit
from repro.modelcheck.model import MDP


def small_model() -> MDP:
    mdp = MDP()
    mdp.set_initial("s0")
    mdp.add_choice("s0", "risky", [("goal", 0.5), ("trap", 0.5)], reward=1.0)
    mdp.add_choice("s0", "safe", [("mid", 1.0)], reward=1.0)
    mdp.add_choice("mid", "step", [("goal", 1.0)], reward=1.0)
    mdp.add_label("goal", "goal")
    mdp.add_label("hazard", "trap")
    return mdp


class TestExport:
    def test_files_created(self, tmp_path):
        paths = export_prism_explicit(small_model(), tmp_path / "model")
        for key in ("tra", "lab", "sta"):
            assert paths[key].exists()

    def test_tra_header_counts(self, tmp_path):
        mdp = small_model()
        paths = export_prism_explicit(mdp, tmp_path / "model")
        header = paths["tra"].read_text().splitlines()[0].split()
        assert [int(x) for x in header] == [
            mdp.num_states, mdp.num_choices, mdp.num_transitions
        ]

    def test_labels_include_init(self, tmp_path):
        paths = export_prism_explicit(small_model(), tmp_path / "model")
        text = paths["lab"].read_text()
        assert '0="init"' in text
        assert '"goal"' in text and '"hazard"' in text

    def test_rows_carry_action_labels(self, tmp_path):
        paths = export_prism_explicit(small_model(), tmp_path / "model")
        body = paths["tra"].read_text().splitlines()[1:]
        labels = {line.split()[4] for line in body}
        assert labels == {"risky", "safe", "step"}

    def test_unvalidated_model_rejected(self, tmp_path):
        mdp = MDP()
        mdp.add_choice("a", "x", [("a", 1.0)])
        with pytest.raises(ValueError):
            export_prism_explicit(mdp, tmp_path / "m")


class TestRoundTrip:
    def test_small_round_trip_values(self, tmp_path):
        mdp = small_model()
        export_prism_explicit(mdp, tmp_path / "m")
        back = import_prism_explicit(tmp_path / "m")
        v0 = solve_reach_avoid_reward(compile_mdp(mdp))
        v1 = solve_reach_avoid_reward(compile_mdp(back))
        assert v1.values[back.initial] == pytest.approx(
            v0.values[mdp.initial]
        )

    def test_routing_model_round_trip(self, tmp_path):
        job = RoutingJob(Rect(2, 2, 4, 4), Rect(9, 8, 11, 10), Rect(1, 1, 12, 12))
        health = np.full((14, 14), 3)
        health[6, :] = 1  # a worn column to make probabilities non-trivial
        model = build_routing_mdp(job, force_field_from_health(health))
        export_prism_explicit(model.mdp, tmp_path / "rj")
        back = import_prism_explicit(tmp_path / "rj")
        assert back.num_states == model.num_states
        assert back.num_choices == model.num_choices
        v0 = solve_reach_avoid_reward(compile_mdp(model.mdp), epsilon=1e-9)
        v1 = solve_reach_avoid_reward(compile_mdp(back), epsilon=1e-9)
        assert v1.values[back.initial] == pytest.approx(
            v0.values[model.mdp.initial], abs=1e-6
        )

    def test_missing_init_rejected(self, tmp_path):
        paths = export_prism_explicit(small_model(), tmp_path / "m")
        lab = paths["lab"].read_text().splitlines()
        # Strip the init marker (label id 0) from every body row.
        cleaned = []
        for line in lab[1:]:
            state, ids = line.split(":")
            kept = [t for t in ids.split() if t != "0"]
            if kept:
                cleaned.append(f"{state}: {' '.join(kept)}")
        paths["lab"].write_text("\n".join([lab[0]] + cleaned) + "\n")
        with pytest.raises(ValueError):
            import_prism_explicit(tmp_path / "m")
