"""Tests for the reactive error-recovery router and the stall-recovery hook."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bioassay.ops import MO, MOType
from repro.bioassay.seqgraph import SequencingGraph
from repro.biochip.chip import MedaChip
from repro.biochip.simulator import MedaSimulator
from repro.core.baseline import BaselineRouter, ReactiveRouter
from repro.core.routing_job import RoutingJob
from repro.core.scheduler import HybridScheduler
from repro.degradation.faults import FaultPlan
from repro.geometry.rect import Rect

W, H = 40, 24


def dead_band_chip() -> MedaChip:
    """A chip whose mid-section dies instantly except a northern gap."""
    faulty = np.zeros((W, H), dtype=bool)
    faulty[18:22, 1:18] = True  # dead band, gap at y = 19..24
    fail_at = np.full((W, H), np.inf)
    fail_at[faulty] = 0
    return MedaChip(
        tau=np.full((W, H), 0.99), c=np.full((W, H), 9000.0),
        fault_plan=FaultPlan(faulty=faulty, fail_at=fail_at),
    )


def crossing_graph() -> SequencingGraph:
    return SequencingGraph("g", [
        MO("d", MOType.DIS, size=(4, 4), locs=((8.5, 8.5),)),
        MO("m", MOType.MAG, pre=("d",), locs=((32.5, 8.5),), hold_cycles=2),
        MO("o", MOType.OUT, pre=("m",), locs=((37.5, 8.5),)),
    ])


class TestReactiveRouter:
    def test_plans_like_baseline(self):
        reactive = ReactiveRouter(W, H)
        baseline = BaselineRouter(W, H)
        job = RoutingJob(Rect(2, 2, 5, 5), Rect(20, 10, 23, 13),
                         Rect(1, 1, 26, 16))
        health = np.full((W, H), 3)
        s_r = reactive.plan(job, health)
        s_b = baseline.plan(job, health)
        assert s_r.expected_cycles == pytest.approx(s_b.expected_cycles)

    def test_recover_uses_health(self):
        reactive = ReactiveRouter(W, H)
        health = np.full((W, H), 3)
        health[10, :] = 0  # wall with no gap inside the zone
        job = RoutingJob(Rect(2, 2, 5, 5), Rect(20, 4, 23, 7),
                         Rect(1, 1, 26, 10))
        assert reactive.plan(job, health) is not None  # blind baseline plan
        assert reactive.recover(job, health) is None   # recovery sees the wall
        assert reactive.recoveries == 1

    def test_not_adaptive(self):
        assert ReactiveRouter(W, H).adaptive is False
        assert ReactiveRouter(W, H).reactive is True


class TestStallRecovery:
    def test_baseline_stalls_reactive_recovers(self):
        """On a dead band with a detour, the pure baseline spins to the
        cycle cap while the reactive router reroutes after the stall."""
        graph = crossing_graph()

        base_sched = HybridScheduler(graph, BaselineRouter(W, H), W, H)
        base_result = MedaSimulator(
            dead_band_chip(), np.random.default_rng(1)
        ).run(base_sched, 400)
        assert not base_result.success
        assert base_result.failure == "max-cycles"

        reactive = ReactiveRouter(W, H)
        re_sched = HybridScheduler(graph, reactive, W, H,
                                   stall_recovery_threshold=8)
        re_result = MedaSimulator(
            dead_band_chip(), np.random.default_rng(1)
        ).run(re_sched, 400)
        assert re_result.success, re_result.failure_reason
        assert re_sched.recoveries >= 1
        assert reactive.recoveries >= 1
        assert any(e.kind == "recovered" for e in re_sched.events)

    def test_recovery_not_triggered_on_healthy_chip(self):
        chip = MedaChip.sample(W, H, np.random.default_rng(5),
                               tau_range=(0.95, 0.99), c_range=(5000, 9000))
        reactive = ReactiveRouter(W, H)
        sched = HybridScheduler(crossing_graph(), reactive, W, H)
        result = MedaSimulator(chip, np.random.default_rng(6)).run(sched, 400)
        assert result.success
        assert sched.recoveries == 0
