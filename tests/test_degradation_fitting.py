"""Tests for model fitting (Fig. 6 reproduction machinery)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.degradation.fitting import (
    ForceFit,
    adjusted_r2,
    fit_capacitance_slope,
    fit_decay_rate,
    fit_force_curve,
)
from repro.degradation.model import DegradationParams


class TestAdjustedR2:
    def test_perfect_fit(self):
        y = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        assert adjusted_r2(y, y, n_params=1) == pytest.approx(1.0)

    def test_penalizes_parameters(self):
        y = np.array([1.0, 2.1, 2.9, 4.2, 5.0, 6.1])
        pred = np.array([1.1, 2.0, 3.0, 4.0, 5.1, 6.0])
        assert adjusted_r2(y, pred, 2) < adjusted_r2(y, pred, 1)

    def test_too_few_samples_rejected(self):
        with pytest.raises(ValueError):
            adjusted_r2(np.array([1.0, 2.0]), np.array([1.0, 2.0]), 1)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            adjusted_r2(np.ones(5), np.ones(4), 1)


class TestDecayRateFit:
    def test_recovers_exact_rate(self):
        n = np.arange(0, 1000, 50, dtype=float)
        rate_true = 2e-3
        force = np.exp(-rate_true * n)
        rate, r2 = fit_decay_rate(n, force)
        assert rate == pytest.approx(rate_true, rel=1e-9)
        assert r2 == pytest.approx(1.0)

    def test_noisy_recovery(self):
        rng = np.random.default_rng(0)
        n = np.arange(0, 1000, 25, dtype=float)
        force = np.exp(-1.5e-3 * n) * (1 + rng.normal(0, 0.02, n.size))
        rate, r2 = fit_decay_rate(n, force)
        assert rate == pytest.approx(1.5e-3, rel=0.1)
        assert r2 > 0.9

    def test_rejects_all_nonpositive(self):
        with pytest.raises(ValueError):
            fit_decay_rate(np.arange(4.0), np.array([-1.0, 0.0, -2.0, 0.0]))


class TestForceCurveFit:
    def test_recovers_paper_scale_constants(self):
        params = DegradationParams(tau=0.556, c=822.7)
        n = np.arange(0, 1600, 80, dtype=float)
        force = np.asarray(params.relative_force(n))
        fit = fit_force_curve(n, force, c_reference=800.0)
        # (tau, c) individually sit on an identifiability ridge; the decay
        # rate is the physical quantity and must match exactly.
        expected_rate = -2 * np.log(0.556) / 822.7
        assert fit.decay_rate == pytest.approx(expected_rate, rel=1e-3)
        assert fit.r2_adjusted > 0.99

    def test_fit_quality_reported_on_linear_scale(self):
        params = DegradationParams(tau=0.53, c=788.4)
        rng = np.random.default_rng(3)
        n = np.arange(0, 1600, 80, dtype=float)
        force = np.asarray(params.relative_force(n)) * (
            1 + rng.normal(0, 0.03, n.size)
        )
        fit = fit_force_curve(n, force)
        assert fit.r2_adjusted > 0.94  # the paper's bar for all curves

    def test_prediction_matches_model(self):
        fit = ForceFit(tau=0.6, c=500.0, r2_adjusted=1.0)
        n = np.array([0.0, 250.0, 500.0])
        np.testing.assert_allclose(fit.predict(n), [1.0, 0.6, 0.36])

    def test_too_few_samples_rejected(self):
        with pytest.raises(ValueError):
            fit_force_curve(np.arange(3.0), np.ones(3))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            fit_force_curve(np.arange(10.0), np.ones(9))


class TestCapacitanceSlope:
    def test_exact_linear(self):
        n = np.arange(0, 500, 50, dtype=float)
        cap = 4e-12 + 1e-16 * n
        slope, r2 = fit_capacitance_slope(n, cap)
        assert slope == pytest.approx(1e-16, rel=1e-6)
        assert r2 == pytest.approx(1.0)
