"""Tests for SMG solving and the MEDA game construction (Sec. V-C)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.routing_job import RoutingJob
from repro.core.smg import GameState, build_meda_smg
from repro.geometry.rect import Rect
from repro.modelcheck.games import game_reach_avoid_probability
from repro.modelcheck.model import (
    PLAYER_CONTROLLER,
    PLAYER_ENVIRONMENT,
    SMG,
)


def coin_game() -> SMG:
    """Controller picks left/right; environment then gates the goal.

    left  -> e1: env chooses goal (1.0) or dead (1.0)
    right -> goal with probability 0.8, dead 0.2 (no env interference)
    """
    game = SMG()
    game.set_initial("c0")
    game.set_player("c0", PLAYER_CONTROLLER)
    game.add_choice("c0", "left", [("e1", 1.0)])
    game.add_choice("c0", "right", [("goal", 0.8), ("dead", 0.2)])
    game.set_player("e1", PLAYER_ENVIRONMENT)
    game.add_choice("e1", "allow", [("goal", 1.0)])
    game.add_choice("e1", "deny", [("dead", 1.0)])
    game.add_label("goal", "goal")
    game.validate()
    return game


class TestGameSolving:
    def test_adversarial_value(self):
        # Against an adversary, "left" is worth 0 (env denies); "right" 0.8.
        game = coin_game()
        res = game_reach_avoid_probability(game, adversarial=True)
        assert res.values[game.initial] == pytest.approx(0.8)

    def test_cooperative_value(self):
        # A cooperative environment allows the goal: "left" is worth 1.
        game = coin_game()
        res = game_reach_avoid_probability(game, adversarial=False)
        assert res.values[game.initial] == pytest.approx(1.0)

    def test_controller_strategy_extraction(self):
        game = coin_game()
        res = game_reach_avoid_probability(game, adversarial=True)
        idx = game.state_index["c0"]
        assert game.enabled(idx)[int(res.choice[idx])].label == "right"

    def test_missing_player_rejected(self):
        game = SMG()
        game.set_initial("a")
        game.add_choice("a", "x", [("a", 1.0)])
        with pytest.raises(ValueError):
            game.validate()


class TestMedaSMG:
    def job(self) -> RoutingJob:
        return RoutingJob(Rect(2, 2, 3, 3), Rect(5, 2, 6, 3), Rect(1, 1, 7, 5))

    def test_build_small_game(self):
        health = np.full((8, 6), 3)
        game = build_meda_smg(self.job(), health, max_degradations=0)
        assert game.num_states > 0
        assert game.label_set("goal")
        # alternating turn structure: every controller successor is an
        # environment state or absorbing
        for idx in range(game.num_states):
            if game.is_absorbing(idx):
                continue
            player = game.player_of(idx)
            for choice in game.enabled(idx):
                for t, _ in choice.successors:
                    if not game.is_absorbing(t):
                        assert game.player_of(t) != player

    def test_idle_adversary_matches_mdp_value(self):
        """With no degradation budget the game value equals the frozen-H MDP
        value — the paper's partial-order-reduction claim."""
        from repro.core.synthesis import synthesize
        from repro.modelcheck.properties import probability_query

        health = np.full((8, 6), 3)
        game = build_meda_smg(self.job(), health, max_degradations=0)
        game_res = game_reach_avoid_probability(game, adversarial=True)
        mdp_res = synthesize(self.job(), health, query=probability_query())
        assert game_res.values[game.initial] == pytest.approx(
            mdp_res.success_probability, abs=1e-6
        )

    def test_adversary_can_only_hurt(self):
        health = np.full((8, 6), 3)
        job = self.job()
        cells = [(4, 2), (4, 3)]  # a column in the droplet's path
        unlimited = build_meda_smg(job, health, degradable_cells=cells,
                                   max_degradations=2)
        adversarial = game_reach_avoid_probability(unlimited, adversarial=True)
        cooperative = game_reach_avoid_probability(unlimited, adversarial=False)
        v_adv = adversarial.values[unlimited.initial]
        v_coop = cooperative.values[unlimited.initial]
        assert v_adv <= v_coop + 1e-9

    def test_dispense_job_rejected(self):
        from repro.core.droplet import OFF_CHIP

        health = np.full((8, 6), 3)
        job = RoutingJob(OFF_CHIP, Rect(5, 2, 6, 3), Rect(1, 1, 7, 5))
        with pytest.raises(ValueError):
            build_meda_smg(job, health)

    def test_game_state_hashable(self):
        s = GameState(Rect(1, 1, 2, 2), ((3, 3), (3, 3)), PLAYER_CONTROLLER)
        assert hash(s) == hash(
            GameState(Rect(1, 1, 2, 2), ((3, 3), (3, 3)), PLAYER_CONTROLLER)
        )


class TestGameRewards:
    def build(self) -> SMG:
        """Controller routes left (cheap, env can delay) or right (costly,
        delay-proof)."""
        game = SMG()
        game.set_initial("c0")
        game.set_player("c0", PLAYER_CONTROLLER)
        game.add_choice("c0", "left", [("e1", 1.0)], reward=1.0)
        game.add_choice("c0", "right", [("goal", 1.0)], reward=5.0)
        game.set_player("e1", PLAYER_ENVIRONMENT)
        game.add_choice("e1", "allow", [("goal", 1.0)], reward=0.0)
        game.add_choice("e1", "delay", [("c0", 1.0)], reward=2.0)
        game.add_label("goal", "goal")
        game.validate()
        return game

    def test_cooperative_reward(self):
        from repro.modelcheck.games import game_reach_avoid_reward

        game = self.build()
        res = game_reach_avoid_reward(game, adversarial=False)
        # env allows: left costs 1, right costs 5 -> min is 1.
        assert res.values[game.initial] == pytest.approx(1.0)

    def test_adversarial_reward(self):
        from repro.modelcheck.games import game_reach_avoid_reward

        game = self.build()
        res = game_reach_avoid_reward(game, adversarial=True)
        # env delays forever on "left" (each loop costs 3), so the
        # controller must pay for "right".
        assert res.values[game.initial] == pytest.approx(5.0)

    def test_adversarial_unwinnable_is_infinite(self):
        from repro.modelcheck.games import game_reach_avoid_reward

        game = SMG()
        game.set_initial("c0")
        game.set_player("c0", PLAYER_CONTROLLER)
        game.add_choice("c0", "go", [("e1", 1.0)], reward=1.0)
        game.set_player("e1", PLAYER_ENVIRONMENT)
        game.add_choice("e1", "allow", [("goal", 1.0)])
        game.add_choice("e1", "block", [("c0", 1.0)])
        game.add_label("goal", "goal")
        game.validate()
        adv = game_reach_avoid_reward(game, adversarial=True)
        coop = game_reach_avoid_reward(game, adversarial=False)
        assert adv.values[game.initial] == float("inf")
        assert coop.values[game.initial] == pytest.approx(1.0)

    def test_meda_game_reward_matches_mdp_with_idle_adversary(self):
        from repro.core.synthesis import synthesize
        from repro.modelcheck.games import game_reach_avoid_reward

        health = np.full((8, 6), 3)
        job = RoutingJob(Rect(2, 2, 3, 3), Rect(5, 2, 6, 3), Rect(1, 1, 7, 5))
        game = build_meda_smg(job, health, max_degradations=0)
        game_res = game_reach_avoid_reward(game, adversarial=True)
        # The game charges 1 per controller action and 0 for the idle
        # environment turns, so values align with the frozen-H MDP's Rmin.
        mdp_res = synthesize(job, health)
        assert game_res.values[game.initial] == pytest.approx(
            mdp_res.expected_cycles, abs=1e-4
        )
