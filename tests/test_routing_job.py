"""Tests for routing jobs and the MO-to-RJ helper (Algorithm 1, Table IV)."""

from __future__ import annotations

import pytest

from repro.bioassay.ops import MO, MOType
from repro.core.droplet import OFF_CHIP
from repro.core.routing_job import RJHelper, RoutingJob, zone
from repro.geometry.rect import Rect

W, H = 60, 30


def fig12_mos() -> list[MO]:
    """The Fig. 12 / Table IV example: two dispenses, a mix, a mag."""
    return [
        MO("M1", MOType.DIS, locs=((17.5, 2.5),), size=(4, 4)),
        MO("M2", MOType.DIS, locs=((17.5, 28.5),), size=(4, 4)),
        MO("M3", MOType.MIX, pre=("M1", "M2"), locs=((10.5, 15.5),)),
        MO("M4", MOType.MAG, pre=("M3",), locs=((40.5, 15.5),)),
    ]


class TestRoutingJob:
    def test_valid_job(self):
        job = RoutingJob(Rect(3, 3, 6, 6), Rect(10, 10, 13, 13), Rect(1, 1, 16, 16))
        assert not job.is_dispense

    def test_dispense_job(self):
        job = RoutingJob(OFF_CHIP, Rect(16, 1, 19, 4), Rect(13, 1, 22, 7))
        assert job.is_dispense

    def test_goal_outside_hazard_rejected(self):
        with pytest.raises(ValueError):
            RoutingJob(Rect(3, 3, 6, 6), Rect(20, 20, 23, 23), Rect(1, 1, 16, 16))

    def test_start_outside_hazard_rejected(self):
        with pytest.raises(ValueError):
            RoutingJob(Rect(20, 20, 23, 23), Rect(3, 3, 6, 6), Rect(1, 1, 16, 16))

    def test_obstacle_blocking(self):
        job = RoutingJob(
            Rect(3, 3, 6, 6), Rect(10, 10, 13, 13), Rect(1, 1, 16, 16),
            obstacles=(Rect(8, 3, 9, 4),),
        )
        assert job.blocked(Rect(5, 3, 8, 6).translated(1, 0))  # touches obstacle
        assert not job.blocked(Rect(3, 10, 6, 13))

    def test_key_distinguishes_obstacles(self):
        base = RoutingJob(Rect(3, 3, 6, 6), Rect(10, 10, 13, 13), Rect(1, 1, 16, 16))
        with_obs = base.with_obstacles((Rect(8, 8, 9, 9),))
        assert base.key() != with_obs.key()


class TestZone:
    """Table IV hazard bounds: bbox(start, goal) + 3, clipped to the chip."""

    def test_m1_dispense_zone(self):
        assert zone(OFF_CHIP, Rect(16, 1, 19, 4), W, H) == Rect(13, 1, 22, 7)

    def test_m2_dispense_zone(self):
        assert zone(OFF_CHIP, Rect(16, 27, 19, 30), W, H) == Rect(13, 24, 22, 30)

    def test_rj30_zone(self):
        assert zone(Rect(16, 1, 19, 4), Rect(9, 14, 12, 17), W, H) == Rect(6, 1, 22, 20)

    def test_rj31_zone(self):
        assert zone(Rect(16, 27, 19, 30), Rect(9, 14, 12, 17), W, H) == Rect(6, 11, 22, 30)

    def test_m4_zone(self):
        assert zone(Rect(8, 14, 13, 18), Rect(38, 14, 43, 18), W, H) == Rect(5, 11, 46, 21)

    def test_clipped_to_chip(self):
        z = zone(Rect(58, 28, 59, 29), Rect(55, 25, 56, 26), W, H)
        assert z.xb <= W and z.yb <= H


class TestRJHelperTable4:
    """Reproduce Table IV end to end through Algorithm 1."""

    def setup_method(self):
        self.helper = RJHelper(W, H)
        self.decomposed = {mo.name: self.helper.decompose(mo) for mo in fig12_mos()}

    def test_m1_dispense(self):
        d = self.decomposed["M1"]
        (job,) = d.jobs
        assert job.start == OFF_CHIP
        assert job.goal == Rect(16, 1, 19, 4)
        assert job.hazard == Rect(13, 1, 22, 7)
        assert d.output_patterns == (Rect(16, 1, 19, 4),)

    def test_m2_dispense(self):
        (job,) = self.decomposed["M2"].jobs
        assert job.goal == Rect(16, 27, 19, 30)
        assert job.hazard == Rect(13, 24, 22, 30)

    def test_m3_mix_two_jobs_same_goal_center(self):
        d = self.decomposed["M3"]
        rj0, rj1 = d.jobs
        assert rj0.start == Rect(16, 1, 19, 4)
        assert rj0.goal == Rect(9, 14, 12, 17)
        assert rj0.hazard == Rect(6, 1, 22, 20)
        assert rj1.start == Rect(16, 27, 19, 30)
        assert rj1.goal == Rect(9, 14, 12, 17)
        assert rj1.hazard == Rect(6, 11, 22, 30)

    def test_m3_merged_output_is_6x5(self):
        d = self.decomposed["M3"]
        (merged,) = d.output_patterns
        assert (merged.width, merged.height) == (6, 5)
        assert d.size_errors[0] == pytest.approx(0.0625)
        assert merged == Rect(8, 14, 13, 18)

    def test_m4_mag(self):
        d = self.decomposed["M4"]
        (job,) = d.jobs
        assert job.start == Rect(8, 14, 13, 18)
        assert job.goal == Rect(38, 14, 43, 18)
        assert job.hazard == Rect(5, 11, 46, 21)


class TestRJHelperOtherTypes:
    def test_out_keeps_droplet_size(self):
        helper = RJHelper(W, H)
        helper.decompose(MO("d", MOType.DIS, locs=((10.5, 10.5),), size=(4, 4)))
        d = helper.decompose(
            MO("o", MOType.OUT, pre=("d",), locs=((57.5, 10.5),))
        )
        (job,) = d.jobs
        assert (job.goal.width, job.goal.height) == (4, 4)
        assert d.output_patterns == ()

    def test_split_halves_disjoint_and_inside_chip(self):
        helper = RJHelper(W, H)
        helper.decompose(MO("d", MOType.DIS, locs=((20.5, 15.5),), size=(4, 4)))
        d = helper.decompose(
            MO("s", MOType.SPT, pre=("d",), locs=((12.5, 15.5), (30.5, 15.5)))
        )
        rj0, rj1 = d.jobs
        assert not rj0.start.adjacent_or_overlapping(rj1.start)
        assert rj0.start.area == rj1.start.area == 9  # half of 16 fits as 3x3
        # the odd-sized goal sits within half an MC of the requested center
        assert abs(rj0.goal.center[0] - 12.5) <= 0.5
        assert abs(rj0.goal.center[1] - 15.5) <= 0.5

    def test_dilute_emits_four_jobs(self):
        helper = RJHelper(W, H)
        helper.decompose(MO("a", MOType.DIS, locs=((10.5, 10.5),), size=(4, 4)))
        helper.decompose(MO("b", MOType.DIS, locs=((30.5, 10.5),), size=(4, 4)))
        d = helper.decompose(
            MO("dl", MOType.DLT, pre=("a", "b"), locs=((20.5, 15.5), (40.5, 15.5)))
        )
        assert len(d.jobs) == 4
        assert d.merged_pattern is not None
        assert len(d.output_patterns) == 2
        # outputs carry half the merged area
        assert d.output_patterns[0].area == pytest.approx(16, abs=2)

    def test_pre_output_slots(self):
        helper = RJHelper(W, H)
        helper.decompose(MO("d", MOType.DIS, locs=((20.5, 15.5),), size=(4, 4)))
        helper.decompose(
            MO("s", MOType.SPT, pre=("d",), locs=((12.5, 15.5), (30.5, 15.5)))
        )
        d = helper.decompose(
            MO("o", MOType.OUT, pre=("s",), pre_output=(1,), locs=((57.5, 15.5),))
        )
        (job,) = d.jobs
        # consumes split output 1 (at loc (30.5, 15.5))
        assert job.start.center[0] == pytest.approx(30.5, abs=1)

    def test_missing_predecessor_rejected(self):
        helper = RJHelper(W, H)
        with pytest.raises(ValueError):
            helper.decompose(MO("o", MOType.OUT, pre=("ghost",), locs=((57.5, 10.5),)))

    def test_oversized_droplet_rejected(self):
        helper = RJHelper(10, 10)
        with pytest.raises(ValueError):
            helper.decompose(
                MO("d", MOType.DIS, locs=((5.0, 5.0),), size=(12, 12))
            )

    def test_decompose_all_in_order(self):
        helper = RJHelper(W, H)
        results = helper.decompose_all(fig12_mos())
        assert [d.mo.name for d in results] == ["M1", "M2", "M3", "M4"]
