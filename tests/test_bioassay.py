"""Tests for MO records, sequencing graphs, the planner and the suite."""

from __future__ import annotations

import pytest

from repro.bioassay.library import (
    ALL_BIOASSAYS,
    EVALUATION_BIOASSAYS,
    PATTERN_BIOASSAYS,
    covid_pcr,
    master_mix,
    serial_dilution,
)
from repro.bioassay.ops import MO, MO_ARITY, MOType
from repro.bioassay.planner import Planner, PlannerConfig, plan
from repro.bioassay.seqgraph import SequencingGraph


class TestMO:
    def test_arity_table(self):
        """Table III input/output droplet counts."""
        assert MO_ARITY[MOType.DIS] == (0, 1)
        assert MO_ARITY[MOType.OUT] == (1, 0)
        assert MO_ARITY[MOType.DSC] == (1, 0)
        assert MO_ARITY[MOType.MIX] == (2, 1)
        assert MO_ARITY[MOType.SPT] == (1, 2)
        assert MO_ARITY[MOType.DLT] == (2, 2)
        assert MO_ARITY[MOType.MAG] == (1, 1)

    def test_wrong_predecessor_count_rejected(self):
        with pytest.raises(ValueError):
            MO("m", MOType.MIX, pre=("a",))

    def test_dispense_needs_size(self):
        with pytest.raises(ValueError):
            MO("d", MOType.DIS)

    def test_split_needs_two_locations(self):
        with pytest.raises(ValueError):
            MO("s", MOType.SPT, pre=("a",), locs=((5.0, 5.0),))

    def test_pre_output_length_checked(self):
        with pytest.raises(ValueError):
            MO("m", MOType.MIX, pre=("a", "b"), pre_output=(0,))

    def test_negative_hold_rejected(self):
        with pytest.raises(ValueError):
            MO("d", MOType.DIS, size=(4, 4), hold_cycles=-1)

    def test_with_locs(self):
        mo = MO("d", MOType.DIS, size=(4, 4))
        placed = mo.with_locs(((5.5, 5.5),))
        assert placed.placed
        assert not mo.placed


class TestSequencingGraph:
    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            SequencingGraph("x", [
                MO("d", MOType.DIS, size=(4, 4)),
                MO("d", MOType.DIS, size=(4, 4)),
            ])

    def test_unknown_predecessor_rejected(self):
        with pytest.raises(ValueError):
            SequencingGraph("x", [MO("o", MOType.OUT, pre=("ghost",))])

    def test_double_consumption_rejected(self):
        with pytest.raises(ValueError):
            SequencingGraph("x", [
                MO("d", MOType.DIS, size=(4, 4)),
                MO("o1", MOType.OUT, pre=("d",)),
                MO("o2", MOType.OUT, pre=("d",)),
            ])

    def test_bad_output_slot_rejected(self):
        with pytest.raises(ValueError):
            SequencingGraph("x", [
                MO("d", MOType.DIS, size=(4, 4)),
                MO("o", MOType.OUT, pre=("d",), pre_output=(1,)),
            ])

    def test_split_slots_consumable_separately(self):
        graph = SequencingGraph("x", [
            MO("d", MOType.DIS, size=(4, 4)),
            MO("s", MOType.SPT, pre=("d",)),
            MO("o1", MOType.OUT, pre=("s",), pre_output=(0,)),
            MO("o2", MOType.OUT, pre=("s",), pre_output=(1,)),
        ])
        assert len(graph) == 4

    def test_topological_respects_dependencies(self):
        graph = master_mix()
        order = [mo.name for mo in graph.topological()]
        assert order.index("buffer") < order.index("mix1")
        assert order.index("mix1") < order.index("mix2")
        assert order.index("mix2") < order.index("collect")

    def test_depth(self):
        assert master_mix().depth == 4  # dis -> mix1 -> mix2 -> out

    def test_count(self):
        assert master_mix().count(MOType.DIS) == 3
        assert master_mix().count(MOType.MIX) == 2


class TestLibrary:
    def test_all_nine_bioassays_build(self):
        assert len(ALL_BIOASSAYS) == 9
        for name, builder in ALL_BIOASSAYS.items():
            graph = builder()
            assert graph.name == name
            assert len(graph) >= 5

    def test_six_evaluation_benchmarks(self):
        assert set(EVALUATION_BIOASSAYS) == {
            "master-mix", "cep", "serial-dilution", "nuip",
            "covid-rat", "covid-pcr",
        }

    def test_three_pattern_bioassays(self):
        assert set(PATTERN_BIOASSAYS) == {
            "chip", "multiplex-invitro", "gene-expression",
        }

    def test_serial_dilution_scales_with_stages(self):
        assert len(serial_dilution(2)) < len(serial_dilution(6))
        with pytest.raises(ValueError):
            serial_dilution(0)

    def test_terminal_mos_close_the_protocol(self):
        """Every bioassay ends with all droplets output or discarded: each
        non-terminal MO output is consumed."""
        for builder in ALL_BIOASSAYS.values():
            graph = builder()
            consumed = set()
            for mo in graph.mos:
                slots = mo.pre_output if mo.pre_output else (0,) * len(mo.pre)
                consumed.update(zip(mo.pre, slots))
            for mo in graph.mos:
                for slot in range(mo.n_outputs):
                    assert (mo.name, slot) in consumed, (
                        f"{graph.name}: output {slot} of {mo.name} dangles"
                    )

    def test_nuip_is_the_longest_benchmark(self):
        lengths = {n: len(b()) for n, b in EVALUATION_BIOASSAYS.items()}
        assert max(lengths, key=lengths.get) == "nuip"


class TestPlanner:
    def test_all_bioassays_place_on_60x30(self):
        for builder in ALL_BIOASSAYS.values():
            graph = plan(builder(), 60, 30)
            assert graph.is_placed()
            for mo in graph.mos:
                for (x, y) in mo.locs:
                    assert 0.5 <= x <= 60.5
                    assert 0.5 <= y <= 30.5

    def test_dispense_at_edges(self):
        graph = plan(master_mix(), 60, 30)
        for mo in graph.mos:
            if mo.type is MOType.DIS:
                assert mo.locs[0][1] < 6 or mo.locs[0][1] > 24

    def test_interior_modules_clear_of_edges(self):
        graph = plan(covid_pcr(), 60, 30)
        for mo in graph.mos:
            if mo.type in (MOType.MIX, MOType.MAG, MOType.SPT, MOType.DLT):
                x, y = mo.locs[0]
                assert 4 < x < 57 and 4 < y < 27

    def test_split_locations_distinct(self):
        graph = plan(covid_pcr(), 60, 30)
        for mo in graph.mos:
            if mo.type in (MOType.SPT, MOType.DLT):
                assert mo.locs[0] != mo.locs[1]

    def test_placement_is_deterministic(self):
        a = plan(covid_pcr(), 60, 30)
        b = plan(covid_pcr(), 60, 30)
        assert [mo.locs for mo in a.mos] == [mo.locs for mo in b.mos]

    def test_tiny_chip_rejected(self):
        with pytest.raises(ValueError):
            PlannerConfig(width=10, height=10)

    def test_already_placed_mos_kept(self):
        graph = SequencingGraph("x", [
            MO("d", MOType.DIS, size=(4, 4), locs=((17.5, 2.5),)),
            MO("o", MOType.OUT, pre=("d",)),
        ])
        placed = Planner(PlannerConfig(60, 30)).place(graph)
        assert placed.mo("d").locs == ((17.5, 2.5),)
        assert placed.mo("o").placed
