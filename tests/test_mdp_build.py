"""Tests for the per-RJ MDP induction (Sec. VI-C)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.droplet import OFF_CHIP
from repro.core.mdp import HAZARD_STATE, build_routing_mdp
from repro.core.routing_job import RoutingJob
from repro.core.transitions import UniformForceField
from repro.geometry.rect import Rect


def field(w: int = 40, h: int = 40, v: float = 1.0) -> UniformForceField:
    return UniformForceField(w, h, v)


class TestStateSpace:
    def test_positions_plus_hazard_sink_square_droplet(self):
        """With r = 3/2 a square droplet cannot morph, so the state space is
        exactly the positions inside the zone plus the hazard sink — the
        structure behind the Table V model sizes."""
        job = RoutingJob(Rect(1, 1, 3, 3), Rect(8, 8, 10, 10), Rect(1, 1, 10, 10))
        model = build_routing_mdp(job, field(), max_aspect=1.5)
        positions = (10 - 3 + 1) ** 2  # 8x8 placements of a 3x3 droplet
        assert model.num_states == positions + 1  # + HAZARD sink

    def test_hazard_sink_labeled(self):
        job = RoutingJob(Rect(1, 1, 3, 3), Rect(8, 8, 10, 10), Rect(1, 1, 10, 10))
        model = build_routing_mdp(job, field(), max_aspect=1.5)
        hazard = model.mdp.label_set("hazard")
        assert hazard == {model.mdp.state_index[HAZARD_STATE]}

    def test_goal_states_absorbing_and_labeled(self):
        job = RoutingJob(Rect(1, 1, 3, 3), Rect(7, 7, 10, 10), Rect(1, 1, 10, 10))
        model = build_routing_mdp(job, field(), max_aspect=1.5)
        for idx in model.mdp.label_set("goal"):
            assert model.mdp.is_absorbing(idx)
            assert job.goal.contains(model.mdp.states[idx])

    def test_morphing_enlarges_state_space(self):
        job = RoutingJob(Rect(1, 1, 4, 4), Rect(8, 8, 11, 11), Rect(1, 1, 12, 12))
        rigid = build_routing_mdp(job, field(), max_aspect=1.5)
        morphing = build_routing_mdp(job, field(), max_aspect=2.0)
        assert morphing.num_states > rigid.num_states
        shapes = {
            (s.width, s.height)
            for s in morphing.mdp.states
            if isinstance(s, Rect)
        }
        assert (5, 3) in shapes and (3, 5) in shapes

    def test_model_size_decreases_with_droplet_size(self):
        """Table V row trend: bigger droplets, fewer placements.

        ``max_aspect = 4/3`` disables morphing for every square droplet in
        the 3x3..6x6 range, giving the pure positions-plus-sink structure
        of the paper's Table V model sizes.
        """
        sizes = []
        for d in (3, 4, 5, 6):
            job = RoutingJob(
                Rect(1, 1, d, d), Rect(11 - d, 11 - d, 10, 10), Rect(1, 1, 10, 10)
            )
            model = build_routing_mdp(job, field(), max_aspect=4 / 3)
            sizes.append(model.num_states)
        assert sizes == [65, 50, 37, 26]  # (10 - d + 1)^2 + 1 each

    def test_boundary_aspect_enables_5x5_morphing(self):
        """At exactly r = 3/2 the guard (h+1)/(w-1) <= r holds with equality
        for a 5x5 droplet, so morphing is enabled (the guards are
        non-strict, as in the paper's formulas)."""
        job = RoutingJob(Rect(1, 1, 5, 5), Rect(6, 6, 10, 10), Rect(1, 1, 10, 10))
        model = build_routing_mdp(job, field(), max_aspect=1.5)
        shapes = {
            (s.width, s.height) for s in model.mdp.states if isinstance(s, Rect)
        }
        assert (6, 4) in shapes and (4, 6) in shapes

    def test_dispense_job_rejected(self):
        job = RoutingJob(OFF_CHIP, Rect(3, 3, 5, 5), Rect(1, 1, 8, 8))
        with pytest.raises(ValueError):
            build_routing_mdp(job, field())


class TestTransitionsStructure:
    def test_every_choice_costs_one_cycle(self):
        job = RoutingJob(Rect(1, 1, 3, 3), Rect(6, 6, 8, 8), Rect(1, 1, 8, 8))
        model = build_routing_mdp(job, field(), max_aspect=1.5)
        for cs in model.mdp.choices:
            for c in cs:
                assert c.reward == 1.0

    def test_out_of_zone_moves_feed_hazard_sink(self):
        # Start near the zone's east edge with full force everywhere on a
        # much larger chip: moving east leaves the zone.
        job = RoutingJob(Rect(6, 3, 8, 5), Rect(2, 2, 4, 4), Rect(1, 1, 8, 8))
        model = build_routing_mdp(job, field(), max_aspect=1.5)
        idx = model.mdp.state_index[Rect(6, 3, 8, 5)]
        east = next(c for c in model.mdp.enabled(idx) if c.label == "a_E")
        hazard_idx = model.mdp.state_index[HAZARD_STATE]
        assert [t for t, _ in east.successors] == [hazard_idx]

    def test_chip_edge_yields_self_loop(self):
        # Zone touches the chip's west edge; a_W has no MCs to pull.
        job = RoutingJob(Rect(1, 3, 3, 5), Rect(6, 6, 8, 8), Rect(1, 1, 8, 8))
        model = build_routing_mdp(job, field(8, 8), max_aspect=1.5)
        idx = model.mdp.state_index[Rect(1, 3, 3, 5)]
        west = next(c for c in model.mdp.enabled(idx) if c.label == "a_W")
        assert [t for t, _ in west.successors] == [idx]

    def test_obstacle_states_feed_hazard_sink(self):
        obstacle = Rect(5, 1, 6, 8)
        job = RoutingJob(
            Rect(1, 3, 3, 5), Rect(1, 6, 3, 8), Rect(1, 1, 8, 8),
            obstacles=(obstacle,),
        )
        model = build_routing_mdp(job, field(), max_aspect=1.5)
        # No reachable state may touch the obstacle.
        for s in model.mdp.states:
            if isinstance(s, Rect) and s != job.start:
                assert not s.adjacent_or_overlapping(obstacle)

    def test_start_inside_goal_is_trivially_absorbing(self):
        job = RoutingJob(Rect(3, 3, 5, 5), Rect(2, 2, 6, 6), Rect(1, 1, 8, 8))
        model = build_routing_mdp(job, field(), max_aspect=1.5)
        assert model.mdp.initial in model.mdp.label_set("goal")
        assert model.num_states == 2  # start + hazard sink


class TestStatistics:
    def test_counts_are_consistent(self):
        job = RoutingJob(Rect(1, 1, 4, 4), Rect(7, 7, 10, 10), Rect(1, 1, 10, 10))
        model = build_routing_mdp(job, field(), max_aspect=2.0)
        assert model.num_choices == model.mdp.num_choices
        assert model.num_transitions >= model.num_choices
        assert model.num_states == model.mdp.num_states
