"""Tests for streaming metric snapshots: state export/delta/merge, the
histogram merge edge cases, and the TelemetryPump."""

from __future__ import annotations

import os
import threading

import pytest

from repro import obs, perf
from repro.obs.journal import RunJournal
from repro.obs.metrics import Histogram, MetricsRegistry, state_delta
from repro.obs.pump import HAVE_PROC, TelemetryPump, sample_process


@pytest.fixture(autouse=True)
def clean_obs():
    obs.shutdown()
    perf.reset()
    yield
    obs.shutdown()
    perf.reset()


class TestExportState:
    def test_roundtrip_all_kinds(self):
        reg = MetricsRegistry()
        reg.incr("c", 4)
        reg.set_gauge("g", 2.5)
        reg.observe("h_ms", 7.0)
        state = reg.export_state()
        assert state["counters"] == {"c": 4}
        assert state["gauges"] == {"g": 2.5}
        hist = state["histograms"]["h_ms"]
        assert hist["count"] == 1 and hist["sum"] == 7.0
        assert hist["min"] == 7.0 and hist["max"] == 7.0
        assert sum(hist["bucket_counts"]) == 1

    def test_export_is_a_copy(self):
        reg = MetricsRegistry()
        reg.incr("c")
        state = reg.export_state()
        reg.incr("c")
        assert state["counters"]["c"] == 1

    def test_merge_into_fresh_registry_equals_original(self):
        reg = MetricsRegistry()
        reg.incr("c", 3)
        reg.set_gauge("g", 1.0)
        for v in (1.0, 5.0, 250.0):
            reg.observe("h_ms", v)
        clone = MetricsRegistry()
        clone.merge(reg.export_state())
        assert clone.export_state() == reg.export_state()

    def test_merge_histogram_bounds_mismatch_raises(self):
        a = Histogram("h", bounds=(1, 2, 3))
        b = Histogram("h", bounds=(1, 2, 4))
        b.observe(1.5)
        with pytest.raises(ValueError, match="bounds"):
            a.merge_state(b.state())


class TestStateDelta:
    def test_quiet_interval_is_empty(self):
        reg = MetricsRegistry()
        reg.incr("c", 2)
        reg.observe("h_ms", 1.0)
        state = reg.export_state()
        delta = state_delta(state, reg.export_state())
        assert delta == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_none_baseline_returns_everything(self):
        reg = MetricsRegistry()
        reg.incr("c", 2)
        delta = state_delta(None, reg.export_state())
        assert delta["counters"] == {"c": 2}

    def test_counter_and_histogram_delta(self):
        reg = MetricsRegistry()
        reg.incr("c", 2)
        reg.observe("h_ms", 1.0)
        before = reg.export_state()
        reg.incr("c", 3)
        reg.observe("h_ms", 9.0)
        delta = state_delta(before, reg.export_state())
        assert delta["counters"] == {"c": 3}
        hist = delta["histograms"]["h_ms"]
        assert hist["count"] == 1 and hist["sum"] == pytest.approx(9.0)

    def test_sum_of_deltas_equals_total_under_concurrency(self):
        reg = MetricsRegistry()
        stop = threading.Event()

        def hammer():
            while not stop.is_set():
                reg.incr("c")
                reg.observe("h_ms", 1.0)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        try:
            merged = MetricsRegistry()
            prev = None
            for _ in range(50):
                state = reg.export_state()
                merged.merge(state_delta(prev, state))
                prev = state
        finally:
            stop.set()
            for t in threads:
                t.join()
        # Deltas accumulated into a fresh registry reproduce the cumulative
        # state at the last export exactly — no lost or double counts.
        assert merged.export_state()["counters"]["c"] == \
            prev["counters"]["c"]
        assert merged.export_state()["histograms"]["h_ms"]["count"] == \
            prev["histograms"]["h_ms"]["count"]


class TestHistogramMergeEdgeCases:
    def test_single_sample(self):
        a = Histogram("h", bounds=(1, 10, 100))
        b = Histogram("h", bounds=(1, 10, 100))
        b.observe(5.0)
        a.merge_state(b.state())
        assert a.count == 1
        assert a.min == 5.0 and a.max == 5.0
        assert a.quantile(0.5) <= 10.0

    def test_all_samples_one_bucket(self):
        a = Histogram("h", bounds=(1, 10, 100))
        b = Histogram("h", bounds=(1, 10, 100))
        for _ in range(100):
            b.observe(4.0)
        a.merge_state(b.state())
        assert a.count == 100
        assert a.state()["bucket_counts"][1] == 100

    def test_merge_of_worker_deltas_matches_single_registry(self):
        # Two "workers" each observe a disjoint sample set; merging their
        # deltas must equal one registry that saw every sample.
        samples_a = [0.5, 3.0, 12.0]
        samples_b = [7.0, 90.0, 800.0]
        reference = Histogram("h", bounds=(1, 10, 100))
        parent = Histogram("h", bounds=(1, 10, 100))
        for worker_samples in (samples_a, samples_b):
            worker = Histogram("h", bounds=(1, 10, 100))
            for v in worker_samples:
                worker.observe(v)
                reference.observe(v)
            parent.merge_state(worker.state())
        assert parent.state() == reference.state()

    def test_merge_empty_state_is_noop(self):
        a = Histogram("h", bounds=(1, 10))
        a.observe(2.0)
        empty = Histogram("h", bounds=(1, 10))
        before = a.state()
        a.merge_state(empty.state())
        assert a.state() == before


@pytest.mark.skipif(not HAVE_PROC, reason="/proc is Linux-only")
class TestSampleProcess:
    def test_self_sample(self):
        sample = sample_process()
        assert sample["pid"] == os.getpid()
        assert sample["rss_kb"] > 0
        assert sample["cpu_s"] >= 0.0

    def test_dead_pid_returns_none(self):
        # Fork-then-reap guarantees a pid with no /proc entry is awkward;
        # an (almost certainly) unused huge pid is good enough here.
        assert sample_process(2 ** 22 + 12345) is None


class TestTelemetryPump:
    def test_rejects_non_positive_interval(self):
        with pytest.raises(ValueError):
            TelemetryPump(RunJournal(), interval_s=0)

    def test_tick_emits_snapshot_and_resources(self):
        journal = RunJournal()
        reg = MetricsRegistry()
        reg.incr("c", 2)
        pump = TelemetryPump(journal, registry=reg)
        record = pump.tick()
        assert record["window"] == 1
        events = [r["event"] for r in journal.records]
        assert events == ["telemetry.snapshot", "telemetry.resources"]
        snap = journal.records[0]
        assert snap["metrics"]["c"] == 2
        assert snap["delta_counters"] == {"c": 2}
        assert pump.windows == 1

    def test_delta_counters_between_ticks(self):
        journal = RunJournal()
        reg = MetricsRegistry()
        reg.incr("c", 1)
        pump = TelemetryPump(journal, registry=reg)
        pump.tick()
        reg.incr("c", 4)
        record = pump.tick()
        assert record["delta_counters"] == {"c": 4}
        quiet = pump.tick()
        assert quiet["delta_counters"] == {}

    def test_worker_liveness(self):
        journal = RunJournal()
        dead_pid = 2 ** 22 + 54321
        pump = TelemetryPump(
            journal, registry=MetricsRegistry(),
            worker_pids=lambda: [os.getpid(), dead_pid],
        )
        pump.tick()
        resources = journal.records[1]
        workers = resources["workers"]
        if HAVE_PROC:
            assert workers[str(os.getpid())]["alive"] is True
            assert workers[str(dead_pid)]["alive"] is False
            assert resources["workers_alive"] == 1
        else:  # pragma: no cover - non-Linux fallback
            assert resources["workers_alive"] == 0

    def test_start_stop_flushes_final_window(self):
        journal = RunJournal()
        pump = TelemetryPump(journal, interval_s=30.0,
                             registry=MetricsRegistry())
        pump.start()
        with pytest.raises(RuntimeError):
            pump.start()
        pump.stop(flush=True)
        # The 30s interval never fired; the stop-flush emitted one window.
        assert pump.windows == 1
        assert any(r["event"] == "telemetry.snapshot"
                   for r in journal.records)

    def test_background_thread_ticks(self):
        journal = RunJournal()
        pump = TelemetryPump(journal, interval_s=0.02,
                             registry=MetricsRegistry())
        import time as _time

        with pump:
            deadline = _time.monotonic() + 5.0
            while pump.windows < 2 and _time.monotonic() < deadline:
                _time.sleep(0.01)
        assert pump.windows >= 2
