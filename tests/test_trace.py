"""Tests for execution traces and MO events."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bioassay.ops import MO, MOType
from repro.bioassay.seqgraph import SequencingGraph
from repro.biochip.chip import MedaChip
from repro.biochip.simulator import MedaSimulator
from repro.biochip.trace import ExecutionTrace, TraceFrame
from repro.core.baseline import AdaptiveRouter
from repro.core.scheduler import HybridScheduler
from repro.geometry.rect import Rect

W, H = 40, 24


def small_graph() -> SequencingGraph:
    return SequencingGraph("g", [
        MO("a", MOType.DIS, size=(4, 4), locs=((8.5, 2.5),)),
        MO("b", MOType.DIS, size=(4, 4), locs=((8.5, 21.5),)),
        MO("m", MOType.MIX, pre=("a", "b"), locs=((20.5, 12.5),),
           hold_cycles=3),
        MO("o", MOType.OUT, pre=("m",), locs=((37.5, 12.5),)),
    ])


def run_traced(seed: int = 0) -> tuple[ExecutionTrace, bool]:
    chip = MedaChip.sample(W, H, np.random.default_rng(seed),
                           tau_range=(0.95, 0.99), c_range=(5000, 9000))
    trace = ExecutionTrace()
    scheduler = HybridScheduler(small_graph(), AdaptiveRouter(), W, H)
    sim = MedaSimulator(chip, np.random.default_rng(seed + 1), trace=trace)
    result = sim.run(scheduler, 500)
    return trace, result.success


class TestTraceCollection:
    def test_frames_cover_execution(self):
        trace, ok = run_traced()
        assert ok
        assert trace.num_cycles > 10
        cycles = [f.cycle for f in trace.frames]
        assert cycles == sorted(cycles)

    def test_actuations_monotone(self):
        trace, _ = run_traced()
        totals = [f.total_actuations for f in trace.frames]
        assert all(a <= b for a, b in zip(totals, totals[1:]))

    def test_events_cover_all_mos(self):
        trace, _ = run_traced()
        activated = {e.mo for e in trace.events if e.kind == "activated"}
        done = {e.mo for e in trace.events if e.kind == "done"}
        assert activated == done == {"a", "b", "m", "o"}

    def test_mix_records_merge_event(self):
        trace, _ = run_traced()
        assert any(e.kind == "merged" and e.mo == "m" for e in trace.events)

    def test_droplet_path_is_contiguous_patterns(self):
        trace, _ = run_traced()
        any_droplet = next(iter(trace.frames[-1].droplets.keys()), None)
        if any_droplet is None:
            # all droplets left the chip by the last frame; use the first
            any_droplet = next(iter(trace.frames[0].droplets.keys()))
        path = trace.droplet_path(any_droplet)
        assert path
        for (_, a), (_, b) in zip(path, path[1:]):
            # one cycle moves a droplet by at most 2 MCs in each axis
            assert abs(a.xa - b.xa) <= 2 and abs(a.ya - b.ya) <= 2

    def test_max_concurrency(self):
        trace, _ = run_traced()
        assert 1 <= trace.max_concurrent_droplets() <= 3

    def test_timeline_rendering(self):
        trace, _ = run_traced()
        timeline = trace.timeline()
        assert "MO timeline" in timeline
        assert " m" in timeline

    def test_stall_counting_on_degraded_chip(self):
        chip = MedaChip.sample(W, H, np.random.default_rng(2),
                               tau_range=(0.4, 0.5), c_range=(8, 15))
        trace = ExecutionTrace()
        scheduler = HybridScheduler(small_graph(), AdaptiveRouter(), W, H)
        sim = MedaSimulator(chip, np.random.default_rng(3), trace=trace)
        sim.run(scheduler, 500)
        total_stalls = sum(
            trace.stall_cycles(did)
            for f in trace.frames
            for did in f.droplets
        )
        assert total_stalls > 0  # heavy degradation must cause stalls

    def test_frame_order_enforced(self):
        trace = ExecutionTrace()
        trace.record(TraceFrame(1, {}, (), 0))
        with pytest.raises(ValueError):
            trace.record(TraceFrame(1, {}, (), 0))


class TestActivationPolicies:
    @pytest.mark.parametrize("order", ["program", "healthiest-first",
                                       "shortest-first"])
    def test_all_policies_complete(self, order):
        chip = MedaChip.sample(W, H, np.random.default_rng(4),
                               tau_range=(0.95, 0.99), c_range=(5000, 9000))
        scheduler = HybridScheduler(
            small_graph(), AdaptiveRouter(), W, H, activation_order=order
        )
        result = MedaSimulator(chip, np.random.default_rng(5)).run(
            scheduler, 500
        )
        assert result.success, order

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            HybridScheduler(small_graph(), AdaptiveRouter(), W, H,
                            activation_order="random")
