"""Tests for the rectangle algebra underlying droplets and zones."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.rect import Rect, manhattan, rect_from_center


def rects(max_coord: int = 30) -> st.SearchStrategy[Rect]:
    return st.tuples(
        st.integers(0, max_coord),
        st.integers(0, max_coord),
        st.integers(0, 8),
        st.integers(0, 8),
    ).map(lambda t: Rect(t[0], t[1], t[0] + t[2], t[1] + t[3]))


class TestConstruction:
    def test_valid_rect(self):
        r = Rect(3, 2, 7, 5)
        assert (r.xa, r.ya, r.xb, r.yb) == (3, 2, 7, 5)

    def test_single_cell_rect(self):
        r = Rect(4, 4, 4, 4)
        assert r.area == 1

    def test_degenerate_x_rejected(self):
        with pytest.raises(ValueError):
            Rect(5, 2, 4, 5)

    def test_degenerate_y_rejected(self):
        with pytest.raises(ValueError):
            Rect(3, 6, 7, 5)

    def test_ordering_is_total(self):
        assert Rect(1, 1, 2, 2) < Rect(2, 1, 3, 2)


class TestPaperExample1:
    """Example 1: droplet (3, 2, 7, 5) has w=5, h=4, A=20, AR=5/4."""

    def test_width(self):
        assert Rect(3, 2, 7, 5).width == 5

    def test_height(self):
        assert Rect(3, 2, 7, 5).height == 4

    def test_area(self):
        assert Rect(3, 2, 7, 5).area == 20

    def test_aspect_ratio(self):
        assert Rect(3, 2, 7, 5).aspect_ratio == pytest.approx(5 / 4)

    def test_center_matches_mo_center_convention(self):
        # Table IV: the 4x4 droplet (16, 1, 19, 4) has center (17.5, 2.5).
        assert Rect(16, 1, 19, 4).center == (17.5, 2.5)


class TestContainment:
    def test_contains_itself(self):
        r = Rect(2, 2, 5, 5)
        assert r.contains(r)

    def test_contains_inner(self):
        assert Rect(1, 1, 9, 9).contains(Rect(3, 3, 5, 5))

    def test_not_contains_partial_overlap(self):
        assert not Rect(1, 1, 4, 4).contains(Rect(3, 3, 6, 6))

    def test_contains_cell(self):
        r = Rect(2, 3, 4, 5)
        assert r.contains_cell(2, 3)
        assert r.contains_cell(4, 5)
        assert not r.contains_cell(5, 5)
        assert not r.contains_cell(2, 2)


class TestOverlapAdjacency:
    def test_overlap_true(self):
        assert Rect(1, 1, 4, 4).overlaps(Rect(4, 4, 6, 6))

    def test_overlap_false_diagonal(self):
        assert not Rect(1, 1, 3, 3).overlaps(Rect(4, 4, 6, 6))

    def test_adjacent_with_gap_one(self):
        # Gap of exactly one cell in x: droplets would merge under EWOD.
        assert Rect(1, 1, 3, 3).adjacent_or_overlapping(Rect(5, 1, 7, 3))

    def test_not_adjacent_with_gap_two(self):
        assert not Rect(1, 1, 3, 3).adjacent_or_overlapping(Rect(6, 1, 8, 3))

    def test_adjacent_diagonal_corner(self):
        assert Rect(1, 1, 3, 3).adjacent_or_overlapping(Rect(4, 4, 6, 6))

    def test_intersection(self):
        inter = Rect(1, 1, 5, 5).intersection(Rect(4, 4, 8, 8))
        assert inter == Rect(4, 4, 5, 5)

    def test_intersection_disjoint_is_none(self):
        assert Rect(1, 1, 2, 2).intersection(Rect(5, 5, 6, 6)) is None

    def test_union_bbox(self):
        assert Rect(1, 1, 2, 2).union_bbox(Rect(5, 6, 7, 8)) == Rect(1, 1, 7, 8)


class TestTransforms:
    def test_translated(self):
        assert Rect(1, 2, 3, 4).translated(2, -1) == Rect(3, 1, 5, 3)

    def test_expanded(self):
        assert Rect(3, 3, 5, 5).expanded(2) == Rect(1, 1, 7, 7)

    def test_clamped(self):
        assert Rect(0, 0, 10, 10).clamped(Rect(1, 1, 8, 8)) == Rect(1, 1, 8, 8)

    def test_clamped_disjoint_raises(self):
        with pytest.raises(ValueError):
            Rect(0, 0, 2, 2).clamped(Rect(5, 5, 8, 8))


class TestDistances:
    def test_manhattan_gap_overlapping_is_zero(self):
        assert Rect(1, 1, 4, 4).manhattan_gap(Rect(3, 3, 6, 6)) == 0

    def test_manhattan_gap_axis(self):
        assert Rect(1, 1, 3, 3).manhattan_gap(Rect(6, 1, 8, 3)) == 2

    def test_manhattan_gap_diagonal(self):
        assert Rect(1, 1, 2, 2).manhattan_gap(Rect(5, 6, 7, 8)) == 2 + 3

    def test_center_manhattan(self):
        assert Rect(1, 1, 2, 2).center_manhattan(Rect(5, 1, 6, 2)) == 4.0

    def test_manhattan_cells(self):
        assert manhattan((0, 0), (3, 4)) == 7


class TestRectFromCenter:
    def test_odd_size_exact(self):
        r = rect_from_center(5.0, 5.0, 3, 3)
        assert r == Rect(4, 4, 6, 6)
        assert r.center == (5.0, 5.0)

    def test_even_size_half_center(self):
        r = rect_from_center(17.5, 2.5, 4, 4)
        assert r == Rect(16, 1, 19, 4)

    def test_cells_iteration_count(self):
        assert len(list(Rect(2, 2, 4, 5).cells())) == 12


class TestProperties:
    @given(rects())
    def test_area_consistency(self, r: Rect):
        assert r.area == len(list(r.cells())) == r.width * r.height

    @given(rects(), rects())
    def test_overlap_symmetry(self, a: Rect, b: Rect):
        assert a.overlaps(b) == b.overlaps(a)

    @given(rects(), rects())
    def test_adjacency_symmetry(self, a: Rect, b: Rect):
        assert a.adjacent_or_overlapping(b) == b.adjacent_or_overlapping(a)

    @given(rects(), rects())
    def test_overlap_iff_shared_cell(self, a: Rect, b: Rect):
        shared = set(a.cells()) & set(b.cells())
        assert a.overlaps(b) == bool(shared)

    @given(rects(), rects())
    def test_adjacency_matches_expanded_overlap(self, a: Rect, b: Rect):
        assert a.adjacent_or_overlapping(b) == a.expanded(1).overlaps(
            b.expanded(1)
        )

    @given(rects(), rects())
    def test_union_bbox_contains_both(self, a: Rect, b: Rect):
        bbox = a.union_bbox(b)
        assert bbox.contains(a) and bbox.contains(b)

    @given(rects(), rects())
    def test_manhattan_gap_zero_iff_touching_or_overlap(self, a: Rect, b: Rect):
        gap = a.manhattan_gap(b)
        if a.overlaps(b):
            assert gap == 0

    @given(rects(), st.integers(-5, 5), st.integers(-5, 5))
    def test_translation_preserves_shape(self, r: Rect, dx: int, dy: int):
        t = r.translated(dx, dy)
        assert (t.width, t.height) == (r.width, r.height)

    @given(rects(), rects())
    def test_contains_implies_overlap(self, a: Rect, b: Rect):
        if a.contains(b):
            assert a.overlaps(b)
            assert a.area >= b.area
