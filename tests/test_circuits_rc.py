"""Tests for the RC transient models (the HSPICE substitute)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.circuits.rc import (
    RCPath,
    capacitance_from_charging_time,
    parallel_plate_capacitance,
)


class TestRCPath:
    def test_time_constant(self):
        path = RCPath(resistance=1e6, capacitance=4e-12, v_supply=200.0)
        assert path.time_constant == pytest.approx(4e-6)

    def test_charge_starts_at_initial_voltage(self):
        path = RCPath(1e6, 4e-12, 200.0, v_initial=10.0)
        assert path.charge_voltage(0.0) == pytest.approx(10.0)

    def test_charge_approaches_supply(self):
        path = RCPath(1e6, 4e-12, 200.0)
        assert path.charge_voltage(100 * path.time_constant) == pytest.approx(200.0)

    def test_one_time_constant_63_percent(self):
        path = RCPath(1e6, 4e-12, 200.0)
        v = path.charge_voltage(path.time_constant)
        assert v == pytest.approx(200.0 * (1 - np.exp(-1)))

    def test_discharge_from_supply(self):
        path = RCPath(1e6, 4e-12, 200.0)
        assert path.discharge_voltage(0.0) == pytest.approx(200.0)
        assert path.discharge_voltage(path.time_constant) == pytest.approx(
            200.0 * np.exp(-1)
        )

    def test_charging_time_closed_form(self):
        path = RCPath(1e6, 4e-12, 200.0)
        t_star = path.charging_time(126.42)
        assert path.charge_voltage(t_star) == pytest.approx(126.42)

    def test_charging_time_unreachable_threshold(self):
        path = RCPath(1e6, 4e-12, 200.0)
        assert path.charging_time(200.0) == float("inf")

    def test_charging_time_already_reached(self):
        path = RCPath(1e6, 4e-12, 200.0, v_initial=50.0)
        assert path.charging_time(40.0) == 0.0

    def test_residual_charge_shortens_charging_time(self):
        clean = RCPath(1e6, 4e-12, 200.0)
        charged = RCPath(1e6, 4e-12, 200.0, v_initial=50.0)
        assert charged.charging_time(150.0) < clean.charging_time(150.0)

    def test_discharging_time_closed_form(self):
        path = RCPath(1e6, 4e-12, 200.0)
        t = path.discharging_time(73.58)
        assert path.discharge_voltage(t) == pytest.approx(73.58)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            RCPath(0.0, 4e-12, 200.0)
        with pytest.raises(ValueError):
            RCPath(1e6, -1e-12, 200.0)
        with pytest.raises(ValueError):
            RCPath(1e6, 4e-12, 200.0, v_initial=250.0)

    def test_vectorized_charge(self):
        path = RCPath(1e6, 4e-12, 200.0)
        t = np.array([0.0, 1e-6, 1e-5])
        v = path.charge_voltage(t)
        assert v.shape == (3,)
        assert np.all(np.diff(v) > 0)

    @given(
        st.floats(1e3, 1e9),
        st.floats(1e-15, 1e-9),
        st.floats(1.0, 500.0),
    )
    def test_charging_time_monotone_in_capacitance(self, r, c, v):
        path_small = RCPath(r, c, v)
        path_large = RCPath(r, 2 * c, v)
        threshold = 0.5 * v
        assert path_small.charging_time(threshold) < path_large.charging_time(
            threshold
        )


class TestCapacitanceInversion:
    def test_round_trip(self):
        c_true = 4.2e-12
        path = RCPath(1e6, c_true, 200.0)
        t = path.charging_time(126.42)
        recovered = capacitance_from_charging_time(t, 1e6, 200.0, 126.42)
        assert recovered == pytest.approx(c_true, rel=1e-12)

    def test_bad_threshold_rejected(self):
        with pytest.raises(ValueError):
            capacitance_from_charging_time(1e-6, 1e6, 200.0, 250.0)

    def test_bad_time_rejected(self):
        with pytest.raises(ValueError):
            capacitance_from_charging_time(0.0, 1e6, 200.0, 100.0)


class TestParallelPlate:
    def test_table1_healthy_capacitance(self):
        # Table I: 50x50 um² electrode, silicon-oil permittivity 19e-12 F/m,
        # C_o = 2.375 fF -> implied gap of 20 um.
        c = parallel_plate_capacitance(50e-6 * 50e-6, 19e-12, 20e-6)
        assert c == pytest.approx(2.375e-15, rel=1e-9)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            parallel_plate_capacitance(0.0, 19e-12, 20e-6)
