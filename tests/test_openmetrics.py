"""Tests for the OpenMetrics renderer and the /metrics monitor server."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro import obs, perf
from repro.obs.metrics import MetricsRegistry
from repro.obs.monitor import MonitorServer
from repro.obs.openmetrics import (
    CONTENT_TYPE,
    metric_name,
    parse_openmetrics,
    render_openmetrics,
)


@pytest.fixture(autouse=True)
def clean_obs():
    obs.shutdown()
    perf.reset()
    yield
    obs.shutdown()
    perf.reset()


class TestMetricName:
    def test_dotted_name_sanitizes(self):
        assert metric_name("engine.prefetch.hits") == \
            "repro_engine_prefetch_hits"

    def test_leading_digit_prefixed(self):
        assert metric_name("9lives", prefix="") == "_9lives"

    def test_custom_prefix(self):
        assert metric_name("a.b", prefix="x") == "x_a_b"


class TestRender:
    def test_counter_and_gauge(self):
        reg = MetricsRegistry()
        reg.incr("engine.hits", 7)
        reg.set_gauge("pool.workers", 2.0)
        text = render_openmetrics(reg)
        assert "# TYPE repro_engine_hits counter" in text
        assert "repro_engine_hits_total 7" in text
        assert "# TYPE repro_pool_workers gauge" in text
        assert "repro_pool_workers 2" in text
        assert text.endswith("# EOF\n")

    def test_histogram_buckets_are_cumulative(self):
        reg = MetricsRegistry()
        for v in (0.5, 0.6, 5.0, 5000.0):
            reg.observe("lat_ms", v)
        text = render_openmetrics(reg)
        samples = parse_openmetrics(text)
        buckets = sorted(
            (float(k.split('le="')[1].rstrip('"}')), v)
            for k, v in samples.items()
            if k.startswith("repro_lat_ms_bucket") and "+Inf" not in k
        )
        counts = [v for _, v in buckets]
        assert counts == sorted(counts)  # cumulative: non-decreasing
        by_bound = dict(buckets)
        assert by_bound[0.5] == 1   # le is inclusive
        assert by_bound[1.0] == 2
        assert by_bound[5.0] == 3
        assert samples['repro_lat_ms_bucket{le="+Inf"}'] == 4
        assert samples["repro_lat_ms_count"] == 4
        assert samples["repro_lat_ms_sum"] == pytest.approx(5006.1)

    def test_defaults_to_perf_registry(self):
        perf.incr("global.counter", 3)
        samples = parse_openmetrics(render_openmetrics())
        assert samples["repro_global_counter_total"] == 3

    def test_empty_registry_is_just_eof(self):
        assert render_openmetrics(MetricsRegistry()) == "# EOF\n"


class TestParse:
    def test_rejects_missing_eof(self):
        with pytest.raises(ValueError, match="EOF"):
            parse_openmetrics("repro_x_total 1\n")

    def test_rejects_garbage_line(self):
        with pytest.raises(ValueError, match="not an OpenMetrics sample"):
            parse_openmetrics("!!! not metrics\n# EOF\n")

    def test_accepts_comments_and_labels(self):
        samples = parse_openmetrics(
            '# TYPE x counter\nx_total 2\nh_bucket{le="1"} 5\n# EOF\n'
        )
        assert samples == {"x_total": 2.0, 'h_bucket{le="1"}': 5.0}


def _get(url: str):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, response.headers, response.read().decode()


class TestMonitorServer:
    def test_metrics_and_healthz_endpoints(self):
        reg = MetricsRegistry()
        reg.incr("engine.hits", 4)
        server = MonitorServer(
            port=0, registry=reg, health=lambda: {"cycle": 12},
        )
        try:
            port = server.start()
            assert port != 0
            assert server.url == f"http://127.0.0.1:{port}"

            status, headers, body = _get(f"{server.url}/metrics")
            assert status == 200
            assert headers["Content-Type"] == CONTENT_TYPE
            samples = parse_openmetrics(body)
            assert samples["repro_engine_hits_total"] == 4

            status, headers, body = _get(f"{server.url}/healthz")
            assert status == 200
            assert "application/json" in headers["Content-Type"]
            assert json.loads(body) == {"status": "ok", "cycle": 12}

            status, _, body = _get(f"{server.url}/")
            assert status == 200 and "/metrics" in body
        finally:
            server.stop()

    def test_scrapes_live_perf_registry_when_unbound(self):
        server = MonitorServer(port=0)
        try:
            server.start()
            perf.incr("live.counter", 9)
            _, _, body = _get(f"{server.url}/metrics")
            assert parse_openmetrics(body)["repro_live_counter_total"] == 9
        finally:
            server.stop()

    def test_unknown_path_404(self):
        with MonitorServer(port=0) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(f"{server.url}/nope")
            assert excinfo.value.code == 404

    def test_stop_releases_port_and_double_start_raises(self):
        server = MonitorServer(port=0)
        port = server.start()
        with pytest.raises(RuntimeError, match="already started"):
            server.start()
        server.stop()
        server.stop()  # idempotent
        # the port is free again: a fresh server can bind it
        rebound = MonitorServer(port=port)
        try:
            assert rebound.start() == port
        finally:
            rebound.stop()
