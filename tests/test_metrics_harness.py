"""Tests for the experiment-harness internals (metrics module plumbing)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.metrics import (
    chip_factory_for,
    probability_of_success,
    trial_cycles,
)
from repro.bioassay.library import covid_rat, master_mix
from repro.bioassay.planner import plan
from repro.core.baseline import AdaptiveRouter, BaselineRouter
from repro.degradation.faults import FaultInjector, FaultMode

W, H = 40, 24


class TestChipFactory:
    def test_factory_produces_fresh_chips(self):
        factory = chip_factory_for(W, H)
        a = factory(np.random.default_rng(0))
        b = factory(np.random.default_rng(0))
        assert a is not b
        np.testing.assert_array_equal(a.tau, b.tau)  # same seed, same chip

    def test_factory_respects_ranges(self):
        factory = chip_factory_for(W, H, tau_range=(0.8, 0.81),
                                   c_range=(99, 101))
        chip = factory(np.random.default_rng(1))
        assert 0.8 <= chip.tau.min() and chip.tau.max() <= 0.81
        assert 99 <= chip.c.min() and chip.c.max() <= 101

    def test_factory_applies_fault_plans(self):
        injector = FaultInjector(FaultMode.UNIFORM, fraction=0.2)
        factory = chip_factory_for(
            W, H, fault_plan_factory=lambda rng: injector.inject(W, H, rng)
        )
        chip = factory(np.random.default_rng(2))
        assert chip.faults.fault_fraction == pytest.approx(0.2, abs=0.02)


class TestPoSHarness:
    def test_unplaced_graph_gets_placed(self):
        factory = chip_factory_for(W, H, tau_range=(0.95, 0.99),
                                   c_range=(5000, 9000))
        pos = probability_of_success(
            covid_rat(),  # deliberately unplaced
            factory, lambda w, h: BaselineRouter(w, h),
            k_max_values=[400], n_chips=1, runs_per_chip=1,
        )
        assert pos.at(400) == 1.0

    def test_kmax_grid_sorted_in_result(self):
        factory = chip_factory_for(W, H, tau_range=(0.95, 0.99),
                                   c_range=(5000, 9000))
        pos = probability_of_success(
            plan(covid_rat(), W, H), factory,
            lambda w, h: BaselineRouter(w, h),
            k_max_values=[400, 50, 200], n_chips=1, runs_per_chip=1,
        )
        assert list(pos.k_max_values) == [50, 200, 400]

    def test_router_shared_across_chips(self):
        """The factory is invoked once; its library amortizes across chips."""
        factory = chip_factory_for(W, H, tau_range=(0.95, 0.99),
                                   c_range=(5000, 9000))
        created = []

        def router_factory(w: int, h: int) -> AdaptiveRouter:
            router = AdaptiveRouter()
            created.append(router)
            return router

        probability_of_success(
            plan(covid_rat(), W, H), factory, router_factory,
            k_max_values=[400], n_chips=3, runs_per_chip=1,
        )
        assert len(created) == 1


class TestTrialHarness:
    def test_per_execution_cap_limits_runs(self):
        factory = chip_factory_for(W, H, tau_range=(0.95, 0.99),
                                   c_range=(5000, 9000))
        result = trial_cycles(
            plan(master_mix(), W, H), factory,
            lambda w, h: BaselineRouter(w, h),
            n_trials=1, target_successes=2, k_max_total=500,
            per_execution_cap=5,  # far below the ~50-cycle run time
        )
        # every execution hits the cap and fails -> trial aborts at budget
        assert result.aborted_trials == 1
        assert result.mean_executions_to_first_failure == 0.0

    def test_trial_counts_successes(self):
        factory = chip_factory_for(W, H, tau_range=(0.95, 0.99),
                                   c_range=(5000, 9000))
        result = trial_cycles(
            plan(master_mix(), W, H), factory,
            lambda w, h: BaselineRouter(w, h),
            n_trials=2, target_successes=2, k_max_total=800,
        )
        assert result.aborted_trials == 0
        assert result.mean_executions_to_first_failure == 2.0
        assert result.trials == 2
