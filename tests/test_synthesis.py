"""Tests for strategy synthesis (Algorithm 2) and the router classes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.baseline import AdaptiveRouter, BaselineRouter, OracleRouter
from repro.core.routing_job import RoutingJob, zone
from repro.core.strategy import StrategyLibrary, health_fingerprint
from repro.core.synthesis import (
    force_field_from_degradation,
    force_field_from_health,
    synthesize,
    synthesize_with_field,
    baseline_field,
)
from repro.geometry.rect import Rect
from repro.modelcheck.properties import probability_query

W, H = 30, 20


def job(start=Rect(2, 2, 5, 5), goal=Rect(20, 10, 23, 13)) -> RoutingJob:
    from repro.core.routing_job import zone

    return RoutingJob(start, goal, zone(start, goal, W, H))


def full_health() -> np.ndarray:
    return np.full((W, H), 3)


class TestForceFields:
    def test_health_field_squares_estimate(self):
        h = np.full((4, 4), 3)
        f = force_field_from_health(h)
        assert f.force(1, 1) == pytest.approx(0.875**2)

    def test_health_zero_is_zero_force(self):
        h = np.zeros((4, 4), dtype=int)
        f = force_field_from_health(h)
        assert f.force(2, 2) == 0.0

    def test_pessimistic_field_lower(self):
        h = np.full((4, 4), 2)
        mid = force_field_from_health(h)
        pess = force_field_from_health(h, pessimistic=True)
        assert pess.force(1, 1) < mid.force(1, 1)

    def test_degradation_field(self):
        d = np.full((4, 4), 0.8)
        f = force_field_from_degradation(d)
        assert f.force(1, 1) == pytest.approx(0.64)


class TestSynthesize:
    def test_full_health_reaches_goal_in_manhattan_optimal_cycles(self):
        """With unit force, Rmin = the shortest path over the action set;
        ordinal moves cover one step in each axis per cycle and double
        steps two in one axis, so the bound is max(dx, dy) adjusted for
        doubles."""
        result = synthesize_with_field(job(), baseline_field(W, H))
        assert result.exists
        # dx = 18, dy = 8 for this job; with doubles along x (w=4): the
        # droplet can do better than max = 18.
        assert result.expected_cycles <= 18
        assert result.expected_cycles >= 9  # dx/2, the absolute floor

    def test_full_health_estimate_costs_more_than_unit_force(self):
        """The controller's quantized estimate of full health is 0.875, so
        expected cycles exceed the unit-force shortest path — the price of
        the 2-bit sensor's resolution."""
        estimated = synthesize(job(), full_health()).expected_cycles
        ideal = synthesize_with_field(job(), baseline_field(W, H)).expected_cycles
        assert estimated > ideal

    def test_rigid_full_health_no_doubles_matches_chebyshev(self):
        start, goal = Rect(2, 2, 4, 4), Rect(12, 8, 14, 10)  # 3x3: no doubles
        result = synthesize_with_field(
            RoutingJob(start, goal, Rect(1, 1, 20, 14)), baseline_field(W, H),
            max_aspect=1.5,
        )
        # dx = 10, dy = 6 -> Chebyshev distance 10 with ordinal moves.
        assert result.expected_cycles == pytest.approx(10.0, abs=1e-4)

    def test_degraded_cells_slow_the_route(self):
        health = full_health()
        healthy = synthesize(job(), health).expected_cycles
        health[:, :] = 1  # heavy uniform degradation
        degraded = synthesize(job(), health).expected_cycles
        assert degraded > healthy * 2

    def test_route_avoids_dead_wall_through_gap(self):
        """A dead wall with one gap: the strategy must thread the gap."""
        health = full_health()
        health[12, :] = 0  # dead column x = 13
        health[12, 8:12] = 3  # gap at y = 9..12
        result = synthesize(job(), health)
        assert result.exists
        assert np.isfinite(result.expected_cycles)
        # Walk the strategy's prescribed route greedily (intended moves) and
        # check it passes through the gap rows.
        from repro.core.actions import ACTIONS, apply_action

        delta = job().start
        for _ in range(100):
            if job().goal.contains(delta):
                break
            action = result.strategy.action(delta)
            assert action is not None
            delta = apply_action(delta, ACTIONS[action])
        else:
            pytest.fail("strategy never reached the goal")
        # success: the greedy walk terminated at the goal despite the wall

    def test_complete_dead_wall_means_no_strategy(self):
        health = full_health()
        health[12, :] = 0  # impassable wall between start and goal
        result = synthesize(job(), health)
        assert not result.exists
        assert result.expected_cycles == float("inf")

    def test_probability_query(self):
        result = synthesize(job(), full_health(), query=probability_query())
        assert result.success_probability == pytest.approx(1.0)
        assert result.exists

    def test_probability_query_zero_when_walled(self):
        health = full_health()
        health[12, :] = 0
        result = synthesize(job(), health, query=probability_query())
        assert result.success_probability == pytest.approx(0.0)
        assert not result.exists

    def test_times_reported(self):
        result = synthesize(job(), full_health())
        assert result.construction_time > 0
        assert result.solve_time > 0
        assert result.total_time == pytest.approx(
            result.construction_time + result.solve_time
        )

    def test_start_inside_goal_keeps_strategy(self):
        """Regression: the usability guard must not discard a strategy when
        the start already satisfies the goal (no action is prescribed there,
        which is fine — there is nothing left to do)."""
        start = Rect(10, 8, 13, 11)
        goal = Rect(9, 7, 14, 12)  # contains the start
        result = synthesize(
            RoutingJob(start, goal, zone(start, goal, W, H)), full_health()
        )
        assert result.exists
        assert result.expected_cycles == pytest.approx(0.0)

    def test_no_plan_with_missing_strategy_does_not_raise(self):
        """Regression: when synthesis finds no plan the guard used to
        dereference ``strategy.action`` without a None check; the walled
        job must come back as a clean (None, inf) result."""
        health = full_health()
        health[12, :] = 0
        result = synthesize(job(), health)  # must not raise
        assert result.strategy is None
        assert result.expected_cycles == float("inf")

    def test_dispense_rejected(self):
        from repro.core.droplet import OFF_CHIP

        bad = RoutingJob(OFF_CHIP, Rect(3, 3, 6, 6), Rect(1, 1, 9, 9))
        with pytest.raises(ValueError):
            synthesize(bad, full_health())


class TestRouters:
    def test_baseline_ignores_health(self):
        router = BaselineRouter(W, H)
        healthy = router.plan(job(), full_health())
        degraded_health = full_health()
        degraded_health[:, :] = 1
        degraded = router.plan(job(), degraded_health)
        assert healthy is degraded  # cached, never resynthesized
        assert router.syntheses == 1

    def test_baseline_matches_uniform_field_synthesis(self):
        router = BaselineRouter(W, H)
        strategy = router.plan(job(), full_health())
        direct = synthesize_with_field(job(), baseline_field(W, H))
        assert strategy.expected_cycles == pytest.approx(direct.expected_cycles)

    def test_adaptive_caches_by_zone_health(self):
        router = AdaptiveRouter()
        router.plan(job(), full_health())
        router.plan(job(), full_health())
        assert router.syntheses == 1
        assert router.library.hits == 1

    def test_adaptive_resynthesizes_on_zone_change(self):
        router = AdaptiveRouter()
        router.plan(job(), full_health())
        changed = full_health()
        changed[10, 8] = 1  # inside the zone
        router.plan(job(), changed)
        assert router.syntheses == 2

    def test_adaptive_ignores_out_of_zone_change(self):
        router = AdaptiveRouter()
        router.plan(job(), full_health())
        changed = full_health()
        changed[0, 19] = 0  # outside the job's hazard zone
        router.plan(job(), changed)
        assert router.syntheses == 1

    def test_oracle_router_plans_from_true_degradation(self):
        router = OracleRouter()
        d = np.ones((W, H))
        strategy = router.plan(job(), d)
        assert strategy is not None


class TestLibrary:
    def test_fingerprint_only_reads_zone(self):
        h = full_health()
        zone_rect = Rect(2, 2, 10, 10)
        fp1 = health_fingerprint(h, zone_rect)
        h2 = h.copy()
        h2[20, 15] = 0  # outside
        assert health_fingerprint(h2, zone_rect) == fp1
        h3 = h.copy()
        h3[5, 5] = 0  # inside
        assert health_fingerprint(h3, zone_rect) != fp1

    def test_put_get_round_trip(self):
        lib = StrategyLibrary()
        router = AdaptiveRouter(library=lib)
        strategy = router.plan(job(), full_health())
        assert lib.get(job(), full_health()) is strategy
        assert len(lib) == 1
