"""Tests for sensing wear and the selective-sensing policy (ref. [32])."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bioassay.ops import MO, MOType
from repro.bioassay.seqgraph import SequencingGraph
from repro.biochip.chip import MedaChip
from repro.biochip.simulator import MedaSimulator
from repro.core.baseline import AdaptiveRouter
from repro.core.scheduler import HybridScheduler

W, H = 40, 24


def graph() -> SequencingGraph:
    return SequencingGraph("g", [
        MO("d", MOType.DIS, size=(4, 4), locs=((8.5, 8.5),)),
        MO("o", MOType.OUT, pre=("d",), locs=((37.5, 8.5),)),
    ])


def chip(seed: int = 0) -> MedaChip:
    return MedaChip.sample(W, H, np.random.default_rng(seed),
                           tau_range=(0.9, 0.99), c_range=(2000, 4000))


class TestChipSensing:
    def test_full_scan_stresses_everything(self):
        c = chip()
        c.apply_sensing(weight=0.1)
        assert np.allclose(c.actuations, 0.1)

    def test_masked_scan_stresses_subset(self):
        c = chip()
        mask = np.zeros((W, H), dtype=bool)
        mask[3, 4] = True
        c.apply_sensing(mask, weight=0.2)
        assert c.actuations[3, 4] == pytest.approx(0.2)
        assert c.actuations.sum() == pytest.approx(0.2)

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            chip().apply_sensing(weight=-0.1)

    def test_wrong_mask_shape_rejected(self):
        with pytest.raises(ValueError):
            chip().apply_sensing(np.zeros((3, 3), dtype=bool))

    def test_sensing_stress_degrades(self):
        c = MedaChip(tau=np.full((4, 4), 0.5), c=np.full((4, 4), 2.0))
        for _ in range(100):
            c.apply_sensing(weight=0.5)
        assert (c.degradation() < 1.0).all()


class TestSimulatorPolicies:
    def _run(self, policy: str | None, seed: int = 1) -> MedaChip:
        c = chip(seed)
        scheduler = HybridScheduler(graph(), AdaptiveRouter(), W, H)
        sim = MedaSimulator(c, np.random.default_rng(seed + 1),
                            sensing_policy=policy, sensing_weight=0.1)
        result = sim.run(scheduler, 400)
        assert result.success
        return c

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            MedaSimulator(chip(), np.random.default_rng(0),
                          sensing_policy="sometimes")

    def test_full_scan_wears_idle_corners(self):
        c = self._run("full")
        # the far corner sees sensing stress despite never hosting a droplet
        assert c.actuations[0, H - 1] > 0

    def test_selective_scan_spares_idle_corners(self):
        c = self._run("selective")
        assert c.actuations[0, H - 1] == 0.0

    def test_selective_total_stress_below_full(self):
        full = self._run("full", seed=5)
        selective = self._run("selective", seed=5)
        assert selective.actuations.sum() < full.actuations.sum()

    def test_no_policy_means_no_sensing_stress(self):
        c = self._run(None, seed=7)
        # all stress integral (pure actuations)
        assert np.allclose(c.actuations, np.round(c.actuations))
