"""Tests for the explicit-state model checker (the PRISM-games substitute)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import perf
from repro.modelcheck.compiled import (
    compile_mdp,
    solve_prob1e,
    solve_reach_avoid_probability,
    solve_reach_avoid_reward,
)
from repro.modelcheck.model import MDP, Choice
from repro.modelcheck.properties import (
    Objective,
    probability_query,
    reward_query,
)
from repro.modelcheck.reachability import (
    prob1e,
    reach_avoid_probability,
    reachable_states,
)
from repro.modelcheck.rewards import reach_avoid_reward
from repro.modelcheck.strategy import extract_strategy


def chain_mdp(p: float = 1.0) -> MDP:
    """s0 -> s1 -> goal with per-step success probability p (else stay)."""
    mdp = MDP()
    mdp.set_initial("s0")
    for src, dst in (("s0", "s1"), ("s1", "goal")):
        if p < 1.0:
            mdp.add_choice(src, "step", [(dst, p), (src, 1 - p)], reward=1.0)
        else:
            mdp.add_choice(src, "step", [(dst, 1.0)], reward=1.0)
    mdp.add_label("goal", "goal")
    return mdp


def risky_mdp() -> MDP:
    """A choice between a risky shortcut and a safe detour.

    s0 --shortcut--> goal (0.5) / trap (0.5)      reward 1
    s0 --detour----> a --> b --> goal (certain)   reward 3 total
    """
    mdp = MDP()
    mdp.set_initial("s0")
    mdp.add_choice("s0", "shortcut", [("goal", 0.5), ("trap", 0.5)], reward=1.0)
    mdp.add_choice("s0", "detour", [("a", 1.0)], reward=1.0)
    mdp.add_choice("a", "step", [("b", 1.0)], reward=1.0)
    mdp.add_choice("b", "step", [("goal", 1.0)], reward=1.0)
    mdp.add_label("goal", "goal")
    mdp.add_label("hazard", "trap")
    return mdp


class TestModel:
    def test_choice_distribution_validated(self):
        with pytest.raises(ValueError):
            Choice("a", ((0, 0.5), (1, 0.4)))

    def test_choice_rejects_nonpositive_probability(self):
        with pytest.raises(ValueError):
            Choice("a", ((0, 1.5), (1, -0.5)))

    def test_choice_rejects_negative_reward(self):
        with pytest.raises(ValueError):
            Choice("a", ((0, 1.0),), reward=-1.0)

    def test_stats(self):
        mdp = risky_mdp()
        assert mdp.num_states == 5
        assert mdp.num_choices == 4
        assert mdp.num_transitions == 5

    def test_absorbing_detection(self):
        mdp = chain_mdp()
        assert mdp.is_absorbing(mdp.state_index["goal"])
        assert not mdp.is_absorbing(mdp.state_index["s0"])

    def test_validate_requires_initial(self):
        mdp = MDP()
        mdp.add_choice("a", "x", [("a", 1.0)])
        with pytest.raises(ValueError):
            mdp.validate()

    def test_reachable_states(self):
        mdp = risky_mdp()
        assert reachable_states(mdp) == set(range(5))


class TestQueries:
    def test_query_strings(self):
        assert str(probability_query()) == "Pmax=? [ [] (!hazard) && <> goal ]"
        assert str(reward_query()) == "Rmin=? [ [] (!hazard) && <> goal ]"

    def test_objectives(self):
        assert probability_query().objective is Objective.PMAX
        assert reward_query().objective is Objective.RMIN


class TestReachability:
    def test_certain_chain(self):
        mdp = chain_mdp(1.0)
        res = reach_avoid_probability(mdp)
        assert res.values[mdp.initial] == pytest.approx(1.0)

    def test_retry_chain_reaches_almost_surely(self):
        mdp = chain_mdp(0.5)
        res = reach_avoid_probability(mdp, epsilon=1e-12)
        assert res.values[mdp.initial] == pytest.approx(1.0, abs=1e-6)

    def test_pmax_picks_safe_route(self):
        mdp = risky_mdp()
        res = reach_avoid_probability(mdp)
        assert res.values[mdp.initial] == pytest.approx(1.0)
        strategy = extract_strategy(mdp, res)
        assert strategy.action("s0") == "detour"

    def test_pmin_takes_worst_choice(self):
        mdp = risky_mdp()
        res = reach_avoid_probability(mdp, maximize=False)
        assert res.values[mdp.initial] == pytest.approx(0.5)

    def test_hazard_states_have_value_zero(self):
        mdp = risky_mdp()
        res = reach_avoid_probability(mdp)
        assert res.values[mdp.state_index["trap"]] == 0.0

    def test_overlapping_labels_rejected(self):
        mdp = chain_mdp()
        mdp.add_label("hazard", "goal")
        with pytest.raises(ValueError):
            reach_avoid_probability(mdp)


class TestProb1E:
    def test_chain_all_sure(self):
        mdp = chain_mdp(0.3)
        sure = prob1e(mdp)
        assert sure == {0, 1, 2}

    def test_trap_not_sure(self):
        mdp = risky_mdp()
        sure = prob1e(mdp)
        assert mdp.state_index["trap"] not in sure
        assert mdp.state_index["s0"] in sure  # via the detour

    def test_doomed_state_excluded(self):
        mdp = MDP()
        mdp.set_initial("s0")
        mdp.add_choice("s0", "gamble", [("goal", 0.5), ("dead", 0.5)])
        mdp.add_label("goal", "goal")
        sure = prob1e(mdp)
        assert mdp.state_index["s0"] not in sure


class TestRewards:
    def test_certain_chain_cost(self):
        mdp = chain_mdp(1.0)
        res = reach_avoid_reward(mdp)
        assert res.values[mdp.initial] == pytest.approx(2.0)

    def test_retry_chain_expected_cost(self):
        # Two geometric(p) steps: E[cost] = 2 / p.
        mdp = chain_mdp(0.4)
        res = reach_avoid_reward(mdp, epsilon=1e-10)
        assert res.values[mdp.initial] == pytest.approx(5.0, abs=1e-6)

    def test_rmin_avoids_risky_shortcut(self):
        # The shortcut risks the trap; Rmin's prob1e restriction forces the
        # detour despite its higher cost.
        mdp = risky_mdp()
        res = reach_avoid_reward(mdp)
        assert res.values[mdp.initial] == pytest.approx(3.0)
        strategy = extract_strategy(mdp, res)
        assert strategy.action("s0") == "detour"

    def test_unreachable_goal_is_infinite(self):
        mdp = MDP()
        mdp.set_initial("s0")
        mdp.add_choice("s0", "loop", [("s0", 1.0)], reward=1.0)
        mdp.add_label("goal", "island")
        res = reach_avoid_reward(mdp)
        assert res.values[mdp.initial] == float("inf")


def random_mdp(seed: int) -> MDP:
    """A random MDP with goal/hazard labels for differential testing."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(3, 12))
    mdp = MDP()
    mdp.set_initial(0)
    goal = int(rng.integers(0, n))
    hazard = int(rng.integers(0, n))
    for s in range(n):
        if s in (goal, hazard):
            continue
        for c in range(int(rng.integers(1, 4))):
            succs = rng.choice(n, size=int(rng.integers(1, 4)), replace=False)
            probs = rng.dirichlet(np.ones(len(succs)))
            mdp.add_choice(
                s,
                f"a{c}",
                [(int(t), float(p)) for t, p in zip(succs, probs)],
                reward=float(rng.uniform(0.5, 2.0)),
            )
    mdp.add_label("goal", goal)
    if hazard != goal:
        mdp.add_label("hazard", hazard)
    return mdp


def assert_certified(res, epsilon: float) -> None:
    """The result carries sound two-sided bounds with a closed gap."""
    assert res.certified
    finite = np.isfinite(res.lower) & np.isfinite(res.upper)
    assert np.all(res.upper[finite] >= res.lower[finite] - 1e-15)
    assert res.gap <= epsilon + 1e-12
    assert np.all(res.values[finite] >= res.lower[finite] - 1e-12)
    assert np.all(res.values[finite] <= res.upper[finite] + 1e-12)
    # Infinite values (reward queries outside the prob-1 region) must agree
    # between the bounds and the point estimate.
    assert np.array_equal(np.isfinite(res.values), np.isfinite(res.lower))


class TestCompiledAgainstReference:
    """The vectorized solvers must agree with the pure-Python reference."""

    @given(st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_pmax_agreement(self, seed: int):
        mdp = random_mdp(seed)
        ref = reach_avoid_probability(mdp, epsilon=1e-10)
        cm = compile_mdp(mdp)
        vec = solve_reach_avoid_probability(cm, epsilon=1e-10)
        np.testing.assert_allclose(vec.values, ref.values, atol=1e-6)
        assert_certified(vec, 1e-10)

    @given(st.integers(0, 10_000))
    @settings(max_examples=500, deadline=None)
    def test_pmin_agreement(self, seed: int):
        mdp = random_mdp(seed)
        ref = reach_avoid_probability(mdp, maximize=False, epsilon=1e-10)
        cm = compile_mdp(mdp)
        vec = solve_reach_avoid_probability(cm, maximize=False, epsilon=1e-10)
        np.testing.assert_allclose(vec.values, ref.values, atol=1e-6)
        assert_certified(vec, 1e-10)

    @given(st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_prob1e_agreement(self, seed: int):
        mdp = random_mdp(seed)
        ref = prob1e(mdp)
        cm = compile_mdp(mdp)
        vec = solve_prob1e(cm)
        assert set(np.flatnonzero(vec)) == ref

    @given(st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_rmin_agreement(self, seed: int):
        mdp = random_mdp(seed)
        ref = reach_avoid_reward(mdp, epsilon=1e-10)
        cm = compile_mdp(mdp)
        vec = solve_reach_avoid_reward(cm, epsilon=1e-10)
        finite = np.isfinite(ref.values)
        assert (np.isfinite(vec.values) == finite).all()
        np.testing.assert_allclose(
            vec.values[finite], ref.values[finite], atol=1e-5
        )
        assert_certified(vec, 1e-10)

    def test_strategy_extraction_matches_choice_semantics(self):
        mdp = risky_mdp()
        cm = compile_mdp(mdp)
        res = solve_reach_avoid_reward(cm)
        strategy = extract_strategy(mdp, res)
        assert strategy.action("s0") == "detour"
        assert strategy.initial_value == pytest.approx(3.0)


#: Hypothesis-found falsifying seeds of :func:`random_mdp`, pinned as
#: deterministic regressions.  1186 is ISSUE 4's original ``Pmin``
#: non-convergence (an end component dodging the goal at contraction rate
#: ``1 - 6.4e-3``); the rest broke intermediate versions of the interval
#: solver — budget exhaustion on near-1 contraction rates (436, 5115,
#: 1390, ...) and an unsound direct-solve acceptance via an improper
#: policy (204).
REGRESSION_SEEDS = (204, 436, 1186, 1390, 4082, 4217, 5115, 7082, 7137, 7585)


def _reference_or_none(solve, *args, **kwargs):
    """The scalar reference, or None where it cannot converge.

    Several regression seeds contract at rates around ``1 - 1e-5``; the
    sweep-based reference would need millions of iterations there — which
    is the bug these seeds pinned.  The certified bounds then carry the
    whole correctness claim (they are verified internally by Bellman
    checks, not by the stopping heuristic).
    """
    try:
        return solve(*args, **kwargs)
    except RuntimeError:
        return None


class TestRegressionSeeds:
    """Previously-falsifying models must now solve, certified, and agree."""

    @pytest.mark.parametrize("seed", REGRESSION_SEEDS)
    def test_pmin_converges_certified(self, seed: int):
        mdp = random_mdp(seed)
        cm = compile_mdp(mdp)
        vec = solve_reach_avoid_probability(cm, maximize=False, epsilon=1e-10)
        assert_certified(vec, 1e-10)
        ref = _reference_or_none(
            reach_avoid_probability, mdp, maximize=False, epsilon=1e-10
        )
        if ref is not None:
            np.testing.assert_allclose(vec.values, ref.values, atol=1e-6)

    @pytest.mark.parametrize("seed", REGRESSION_SEEDS)
    def test_pmax_converges_certified(self, seed: int):
        mdp = random_mdp(seed)
        cm = compile_mdp(mdp)
        vec = solve_reach_avoid_probability(cm, epsilon=1e-10)
        assert_certified(vec, 1e-10)
        ref = _reference_or_none(reach_avoid_probability, mdp, epsilon=1e-10)
        if ref is not None:
            np.testing.assert_allclose(vec.values, ref.values, atol=1e-6)

    @pytest.mark.parametrize("seed", REGRESSION_SEEDS)
    def test_rmin_converges_certified(self, seed: int):
        mdp = random_mdp(seed)
        cm = compile_mdp(mdp)
        vec = solve_reach_avoid_reward(cm, epsilon=1e-10)
        assert_certified(vec, 1e-10)
        ref = _reference_or_none(reach_avoid_reward, mdp, epsilon=1e-10)
        if ref is None:
            return
        finite = np.isfinite(ref.values)
        assert (np.isfinite(vec.values) == finite).all()
        np.testing.assert_allclose(
            vec.values[finite], ref.values[finite], atol=1e-5
        )

    def test_seed_1186_plain_solver_still_diverges(self):
        """The uncertified legacy path keeps the original failure mode —
        documenting exactly what the certified pipeline fixes."""
        from repro.modelcheck.interval import NonConvergence

        cm = compile_mdp(random_mdp(1186))
        with pytest.raises(NonConvergence):
            solve_reach_avoid_probability(
                cm, maximize=False, epsilon=1e-10, certified=False,
                max_iterations=10_000,
            )


class TestWarmStartValidation:
    """Seeds are validated and side-corrected, never silently clipped."""

    def test_probability_seed_out_of_bounds_raises(self):
        cm = compile_mdp(random_mdp(7))
        bad = np.full(cm.num_states, 2.0)
        with pytest.raises(ValueError, match=r"outside \[0, 1\]"):
            solve_reach_avoid_probability(cm, initial_values=bad)

    def test_probability_seed_shape_mismatch_raises(self):
        cm = compile_mdp(random_mdp(7))
        with pytest.raises(ValueError, match="shape"):
            solve_reach_avoid_probability(
                cm, initial_values=np.zeros(cm.num_states + 1)
            )

    def test_reward_seed_negative_raises(self):
        cm = compile_mdp(random_mdp(7))
        bad = np.full(cm.num_states, -0.5)
        with pytest.raises(ValueError, match="negative"):
            solve_reach_avoid_reward(cm, initial_values=bad)

    @pytest.mark.parametrize("maximize", [True, False])
    def test_nonfinite_entries_fill_side_correctly(self, maximize: bool):
        # A seed of all-NaN must behave exactly like a cold start for both
        # objectives: under Pmin a 0-fill would sit below the greatest
        # fixpoint (the historic wrong-side bug), so the fill is 1 there.
        mdp = random_mdp(1186)
        cm = compile_mdp(mdp)
        cold = solve_reach_avoid_probability(
            cm, maximize=maximize, epsilon=1e-10
        )
        warm = solve_reach_avoid_probability(
            cm,
            maximize=maximize,
            epsilon=1e-10,
            initial_values=np.full(cm.num_states, np.nan),
        )
        np.testing.assert_allclose(warm.values, cold.values, atol=1e-9)
        assert_certified(warm, 1e-10)

    def test_wrong_side_seed_rejected_not_unsound(self):
        # Feeding Pmin an all-zeros seed (a *lower* bound, not the upper
        # iterate it warms) must not poison the result: the one-step
        # Bellman validation drops it and the solve cold-starts.
        mdp = random_mdp(1186)
        cm = compile_mdp(mdp)
        ref = reach_avoid_probability(mdp, maximize=False, epsilon=1e-10)
        perf.reset()
        vec = solve_reach_avoid_probability(
            cm,
            maximize=False,
            epsilon=1e-10,
            initial_values=np.zeros(cm.num_states),
        )
        np.testing.assert_allclose(vec.values, ref.values, atol=1e-6)
        assert_certified(vec, 1e-10)

    def test_valid_warm_seed_accepted(self):
        mdp = random_mdp(42)
        cm = compile_mdp(mdp)
        first = solve_reach_avoid_reward(cm, epsilon=1e-10)
        perf.reset()
        again = solve_reach_avoid_reward(
            cm, epsilon=1e-10, initial_values=first.lower
        )
        assert perf.get("vi.warm.rejected") == 0
        np.testing.assert_allclose(again.values, first.values, atol=1e-9)
        assert_certified(again, 1e-10)


class TestTrapStates:
    """Choiceless non-goal states are pinned to 0, not left to stale values."""

    def trap_mdp(self) -> MDP:
        mdp = MDP()
        mdp.set_initial("s0")
        # "dead" never receives a choice: it only exists as a successor.
        mdp.add_choice("s0", "gamble", [("goal", 0.5), ("dead", 0.5)])
        mdp.add_choice("s0", "wait", [("s0", 1.0)])
        mdp.add_label("goal", "goal")
        return mdp

    def test_trap_pinned_to_zero_and_counted(self):
        mdp = self.trap_mdp()
        cm = compile_mdp(mdp)
        perf.reset()
        res = solve_reach_avoid_probability(cm, epsilon=1e-10)
        dead = mdp.state_index["dead"]
        assert res.values[dead] == 0.0
        assert res.upper[dead] == 0.0
        assert perf.get("vi.precompute.trap_states") >= 1

    def test_trap_ignores_stale_seed_value(self):
        # The historic bug: a warm seed planted a value on a choiceless
        # state and the isfinite scatter mask never overwrote it.
        mdp = self.trap_mdp()
        cm = compile_mdp(mdp)
        seed = np.zeros(cm.num_states)
        seed[mdp.state_index["dead"]] = 0.9
        res = solve_reach_avoid_probability(
            cm, epsilon=1e-10, initial_values=seed
        )
        assert res.values[mdp.state_index["dead"]] == 0.0
        assert res.upper[mdp.state_index["dead"]] == 0.0

    def test_trap_pinned_in_plain_solver_too(self):
        mdp = self.trap_mdp()
        cm = compile_mdp(mdp)
        seed = np.zeros(cm.num_states)
        seed[mdp.state_index["dead"]] = 0.9
        res = solve_reach_avoid_probability(
            cm, epsilon=1e-10, initial_values=seed, certified=False
        )
        assert res.values[mdp.state_index["dead"]] == 0.0


class TestUnreachableGoal:
    """Walled / disconnected chips: goal unreachable from the start."""

    def _walled_model(self):
        from repro.core.fastmdp import build_routing_model_fast
        from repro.core.routing_job import RoutingJob, zone
        from repro.core.synthesis import force_field_from_health
        from repro.geometry.rect import Rect

        width, height = 30, 20
        start, goal = Rect(2, 2, 5, 5), Rect(20, 10, 23, 13)
        job = RoutingJob(start, goal, zone(start, goal, width, height))
        health = np.full((width, height), 3)
        health[12, :] = 0  # dead column severs every start->goal path
        field = force_field_from_health(health)
        return build_routing_model_fast(job, field.forces)

    def test_walled_chip_pmax_certified_zero(self):
        model = self._walled_model()
        cm = model.compiled
        res = solve_reach_avoid_probability(cm, epsilon=1e-8)
        assert res.values[cm.initial] == 0.0
        assert res.upper[cm.initial] == 0.0  # exact, from prob0a

    def test_walled_chip_rmin_infinite(self):
        model = self._walled_model()
        cm = model.compiled
        res = solve_reach_avoid_reward(cm, epsilon=1e-8)
        assert res.values[cm.initial] == float("inf")
        assert res.lower[cm.initial] == float("inf")

    def test_disconnected_mdp_pmin_pmax_zero(self):
        # Goal on an island no transition reaches: both optima are exactly 0
        # and precomputation settles the model with no numeric work.
        mdp = MDP()
        mdp.set_initial("s0")
        mdp.add_choice("s0", "loop", [("s1", 1.0)])
        mdp.add_choice("s1", "back", [("s0", 1.0)])
        mdp.add_choice("island", "stay", [("island", 1.0)])
        mdp.add_label("goal", "island")
        cm = compile_mdp(mdp)
        for maximize in (True, False):
            res = solve_reach_avoid_probability(cm, maximize=maximize)
            assert res.values[cm.initial] == 0.0
            assert res.upper[cm.initial] == 0.0
