"""Tests for the explicit-state model checker (the PRISM-games substitute)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.modelcheck.compiled import (
    compile_mdp,
    solve_prob1e,
    solve_reach_avoid_probability,
    solve_reach_avoid_reward,
)
from repro.modelcheck.model import MDP, Choice
from repro.modelcheck.properties import (
    Objective,
    probability_query,
    reward_query,
)
from repro.modelcheck.reachability import (
    prob1e,
    reach_avoid_probability,
    reachable_states,
)
from repro.modelcheck.rewards import reach_avoid_reward
from repro.modelcheck.strategy import extract_strategy


def chain_mdp(p: float = 1.0) -> MDP:
    """s0 -> s1 -> goal with per-step success probability p (else stay)."""
    mdp = MDP()
    mdp.set_initial("s0")
    for src, dst in (("s0", "s1"), ("s1", "goal")):
        if p < 1.0:
            mdp.add_choice(src, "step", [(dst, p), (src, 1 - p)], reward=1.0)
        else:
            mdp.add_choice(src, "step", [(dst, 1.0)], reward=1.0)
    mdp.add_label("goal", "goal")
    return mdp


def risky_mdp() -> MDP:
    """A choice between a risky shortcut and a safe detour.

    s0 --shortcut--> goal (0.5) / trap (0.5)      reward 1
    s0 --detour----> a --> b --> goal (certain)   reward 3 total
    """
    mdp = MDP()
    mdp.set_initial("s0")
    mdp.add_choice("s0", "shortcut", [("goal", 0.5), ("trap", 0.5)], reward=1.0)
    mdp.add_choice("s0", "detour", [("a", 1.0)], reward=1.0)
    mdp.add_choice("a", "step", [("b", 1.0)], reward=1.0)
    mdp.add_choice("b", "step", [("goal", 1.0)], reward=1.0)
    mdp.add_label("goal", "goal")
    mdp.add_label("hazard", "trap")
    return mdp


class TestModel:
    def test_choice_distribution_validated(self):
        with pytest.raises(ValueError):
            Choice("a", ((0, 0.5), (1, 0.4)))

    def test_choice_rejects_nonpositive_probability(self):
        with pytest.raises(ValueError):
            Choice("a", ((0, 1.5), (1, -0.5)))

    def test_choice_rejects_negative_reward(self):
        with pytest.raises(ValueError):
            Choice("a", ((0, 1.0),), reward=-1.0)

    def test_stats(self):
        mdp = risky_mdp()
        assert mdp.num_states == 5
        assert mdp.num_choices == 4
        assert mdp.num_transitions == 5

    def test_absorbing_detection(self):
        mdp = chain_mdp()
        assert mdp.is_absorbing(mdp.state_index["goal"])
        assert not mdp.is_absorbing(mdp.state_index["s0"])

    def test_validate_requires_initial(self):
        mdp = MDP()
        mdp.add_choice("a", "x", [("a", 1.0)])
        with pytest.raises(ValueError):
            mdp.validate()

    def test_reachable_states(self):
        mdp = risky_mdp()
        assert reachable_states(mdp) == set(range(5))


class TestQueries:
    def test_query_strings(self):
        assert str(probability_query()) == "Pmax=? [ [] (!hazard) && <> goal ]"
        assert str(reward_query()) == "Rmin=? [ [] (!hazard) && <> goal ]"

    def test_objectives(self):
        assert probability_query().objective is Objective.PMAX
        assert reward_query().objective is Objective.RMIN


class TestReachability:
    def test_certain_chain(self):
        mdp = chain_mdp(1.0)
        res = reach_avoid_probability(mdp)
        assert res.values[mdp.initial] == pytest.approx(1.0)

    def test_retry_chain_reaches_almost_surely(self):
        mdp = chain_mdp(0.5)
        res = reach_avoid_probability(mdp, epsilon=1e-12)
        assert res.values[mdp.initial] == pytest.approx(1.0, abs=1e-6)

    def test_pmax_picks_safe_route(self):
        mdp = risky_mdp()
        res = reach_avoid_probability(mdp)
        assert res.values[mdp.initial] == pytest.approx(1.0)
        strategy = extract_strategy(mdp, res)
        assert strategy.action("s0") == "detour"

    def test_pmin_takes_worst_choice(self):
        mdp = risky_mdp()
        res = reach_avoid_probability(mdp, maximize=False)
        assert res.values[mdp.initial] == pytest.approx(0.5)

    def test_hazard_states_have_value_zero(self):
        mdp = risky_mdp()
        res = reach_avoid_probability(mdp)
        assert res.values[mdp.state_index["trap"]] == 0.0

    def test_overlapping_labels_rejected(self):
        mdp = chain_mdp()
        mdp.add_label("hazard", "goal")
        with pytest.raises(ValueError):
            reach_avoid_probability(mdp)


class TestProb1E:
    def test_chain_all_sure(self):
        mdp = chain_mdp(0.3)
        sure = prob1e(mdp)
        assert sure == {0, 1, 2}

    def test_trap_not_sure(self):
        mdp = risky_mdp()
        sure = prob1e(mdp)
        assert mdp.state_index["trap"] not in sure
        assert mdp.state_index["s0"] in sure  # via the detour

    def test_doomed_state_excluded(self):
        mdp = MDP()
        mdp.set_initial("s0")
        mdp.add_choice("s0", "gamble", [("goal", 0.5), ("dead", 0.5)])
        mdp.add_label("goal", "goal")
        sure = prob1e(mdp)
        assert mdp.state_index["s0"] not in sure


class TestRewards:
    def test_certain_chain_cost(self):
        mdp = chain_mdp(1.0)
        res = reach_avoid_reward(mdp)
        assert res.values[mdp.initial] == pytest.approx(2.0)

    def test_retry_chain_expected_cost(self):
        # Two geometric(p) steps: E[cost] = 2 / p.
        mdp = chain_mdp(0.4)
        res = reach_avoid_reward(mdp, epsilon=1e-10)
        assert res.values[mdp.initial] == pytest.approx(5.0, abs=1e-6)

    def test_rmin_avoids_risky_shortcut(self):
        # The shortcut risks the trap; Rmin's prob1e restriction forces the
        # detour despite its higher cost.
        mdp = risky_mdp()
        res = reach_avoid_reward(mdp)
        assert res.values[mdp.initial] == pytest.approx(3.0)
        strategy = extract_strategy(mdp, res)
        assert strategy.action("s0") == "detour"

    def test_unreachable_goal_is_infinite(self):
        mdp = MDP()
        mdp.set_initial("s0")
        mdp.add_choice("s0", "loop", [("s0", 1.0)], reward=1.0)
        mdp.add_label("goal", "island")
        res = reach_avoid_reward(mdp)
        assert res.values[mdp.initial] == float("inf")


def random_mdp(seed: int) -> MDP:
    """A random MDP with goal/hazard labels for differential testing."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(3, 12))
    mdp = MDP()
    mdp.set_initial(0)
    goal = int(rng.integers(0, n))
    hazard = int(rng.integers(0, n))
    for s in range(n):
        if s in (goal, hazard):
            continue
        for c in range(int(rng.integers(1, 4))):
            succs = rng.choice(n, size=int(rng.integers(1, 4)), replace=False)
            probs = rng.dirichlet(np.ones(len(succs)))
            mdp.add_choice(
                s,
                f"a{c}",
                [(int(t), float(p)) for t, p in zip(succs, probs)],
                reward=float(rng.uniform(0.5, 2.0)),
            )
    mdp.add_label("goal", goal)
    if hazard != goal:
        mdp.add_label("hazard", hazard)
    return mdp


class TestCompiledAgainstReference:
    """The vectorized solvers must agree with the pure-Python reference."""

    @given(st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_pmax_agreement(self, seed: int):
        mdp = random_mdp(seed)
        ref = reach_avoid_probability(mdp, epsilon=1e-10)
        cm = compile_mdp(mdp)
        vec = solve_reach_avoid_probability(cm, epsilon=1e-10)
        np.testing.assert_allclose(vec.values, ref.values, atol=1e-6)

    @given(st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_pmin_agreement(self, seed: int):
        mdp = random_mdp(seed)
        ref = reach_avoid_probability(mdp, maximize=False, epsilon=1e-10)
        cm = compile_mdp(mdp)
        vec = solve_reach_avoid_probability(cm, maximize=False, epsilon=1e-10)
        np.testing.assert_allclose(vec.values, ref.values, atol=1e-6)

    @given(st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_prob1e_agreement(self, seed: int):
        mdp = random_mdp(seed)
        ref = prob1e(mdp)
        cm = compile_mdp(mdp)
        vec = solve_prob1e(cm)
        assert set(np.flatnonzero(vec)) == ref

    @given(st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_rmin_agreement(self, seed: int):
        mdp = random_mdp(seed)
        ref = reach_avoid_reward(mdp, epsilon=1e-10)
        cm = compile_mdp(mdp)
        vec = solve_reach_avoid_reward(cm, epsilon=1e-10)
        finite = np.isfinite(ref.values)
        assert (np.isfinite(vec.values) == finite).all()
        np.testing.assert_allclose(
            vec.values[finite], ref.values[finite], atol=1e-5
        )

    def test_strategy_extraction_matches_choice_semantics(self):
        mdp = risky_mdp()
        cm = compile_mdp(mdp)
        res = solve_reach_avoid_reward(cm)
        strategy = extract_strategy(mdp, res)
        assert strategy.action("s0") == "detour"
        assert strategy.initial_value == pytest.approx(3.0)
