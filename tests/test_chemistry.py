"""Tests for droplet chemistry tracking and bioassay JSON I/O."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bioassay.io import (
    graph_from_dict,
    graph_to_dict,
    load_graph,
    save_graph,
)
from repro.bioassay.library import ALL_BIOASSAYS, covid_rat, serial_dilution
from repro.bioassay.ops import MO, MOType
from repro.bioassay.planner import plan
from repro.bioassay.seqgraph import SequencingGraph
from repro.biochip.chip import MedaChip
from repro.biochip.simulator import MedaSimulator
from repro.core.baseline import AdaptiveRouter
from repro.core.scheduler import HybridScheduler

W, H = 60, 30


def _execute(graph: SequencingGraph, seed: int = 0):
    placed = plan(graph, W, H)
    chip = MedaChip.sample(W, H, np.random.default_rng(seed),
                           tau_range=(0.95, 0.99), c_range=(5000, 9000))
    scheduler = HybridScheduler(placed, AdaptiveRouter(), W, H)
    result = MedaSimulator(chip, np.random.default_rng(seed + 1)).run(
        scheduler, 1200
    )
    assert result.success, result.failure_reason
    return scheduler


class TestConcentrationPropagation:
    def test_serial_dilution_halves_each_stage(self):
        """Four two-fold dilutions of a neat (1.0) sample end at 1/16."""
        stages = 4
        scheduler = _execute(serial_dilution(stages))
        collected = {name: conc for name, _, conc in scheduler.collected}
        assert collected["collect"] == pytest.approx(0.5**stages, rel=1e-9)

    def test_dilution_wastes_carry_intermediate_concentrations(self):
        scheduler = _execute(serial_dilution(3))
        wastes = [conc for name, _, conc in scheduler.collected
                  if name.startswith("waste")]
        # waste_i carries the concentration after i+1 dilutions
        assert sorted(wastes, reverse=True) == pytest.approx(
            [0.5, 0.25, 0.125]
        )

    def test_mix_volume_weighted_average(self):
        graph = SequencingGraph("g", [
            MO("a", MOType.DIS, size=(4, 4), concentration=1.0),
            MO("b", MOType.DIS, size=(4, 4), concentration=0.0),
            MO("m", MOType.MIX, pre=("a", "b"), hold_cycles=2),
            MO("o", MOType.OUT, pre=("m",)),
        ])
        scheduler = _execute(graph)
        (name, volume, conc), = scheduler.collected
        assert name == "o"
        assert conc == pytest.approx(0.5)
        assert volume == pytest.approx(32.0)  # both 4x4 inputs conserved

    def test_split_conserves_volume_and_concentration(self):
        graph = SequencingGraph("g", [
            MO("a", MOType.DIS, size=(4, 4), concentration=0.8),
            MO("s", MOType.SPT, pre=("a",), hold_cycles=2),
            MO("o1", MOType.OUT, pre=("s",), pre_output=(0,)),
            MO("o2", MOType.OUT, pre=("s",), pre_output=(1,)),
        ])
        scheduler = _execute(graph)
        assert len(scheduler.collected) == 2
        total_volume = sum(v for _, v, _ in scheduler.collected)
        assert total_volume == pytest.approx(16.0)
        for _, _, conc in scheduler.collected:
            assert conc == pytest.approx(0.8)

    def test_live_droplet_chemistry_query(self):
        scheduler = _execute(covid_rat())
        # everything exited; chemistry map is empty again
        assert not scheduler.droplets

    def test_invalid_concentration_rejected(self):
        with pytest.raises(ValueError):
            MO("d", MOType.DIS, size=(4, 4), concentration=1.5)


class TestBioassayIO:
    def test_round_trip_all_bioassays(self):
        for builder in ALL_BIOASSAYS.values():
            graph = builder()
            back = graph_from_dict(graph_to_dict(graph))
            assert back.name == graph.name
            assert back.mos == graph.mos

    def test_round_trip_placed_graph(self, tmp_path):
        graph = plan(covid_rat(), W, H)
        path = save_graph(graph, tmp_path / "assay.json")
        back = load_graph(path)
        assert back.mos == graph.mos
        assert back.is_placed()

    def test_concentration_serialized(self):
        data = graph_to_dict(serial_dilution(2))
        sample = next(m for m in data["mos"] if m["name"] == "sample")
        assert sample["concentration"] == 1.0

    def test_missing_keys_rejected(self):
        with pytest.raises(ValueError):
            graph_from_dict({"mos": []})
        with pytest.raises(ValueError):
            graph_from_dict({"name": "x", "mos": [{"name": "a"}]})

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError):
            graph_from_dict({
                "name": "x",
                "mos": [{"name": "a", "type": "teleport"}],
            })

    def test_structural_validation_applies_on_load(self):
        with pytest.raises(ValueError):
            graph_from_dict({
                "name": "x",
                "mos": [{"name": "o", "type": "out", "pre": ["ghost"]}],
            })
