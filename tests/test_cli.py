"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.bioassay == "covid-rat"
        assert args.router == "adaptive"

    def test_synth_coordinates(self):
        args = build_parser().parse_args(
            ["synth", "--start", "2", "3", "--goal", "10", "12"]
        )
        assert args.start == [2, 3]
        assert args.goal == [10, 12]

    def test_monitor_is_run_with_default_port(self):
        from repro.obs.monitor import DEFAULT_PORT

        args = build_parser().parse_args(["monitor"])
        assert args.monitor_port == DEFAULT_PORT
        assert args.monitor_host == "127.0.0.1"
        run = build_parser().parse_args(["run"])
        assert run.monitor_port is None

    def test_telemetry_options_on_run(self):
        args = build_parser().parse_args([
            "run", "--monitor-port", "0", "--snapshot-interval-ms", "250",
            "--slo", "p99(synthesis_ms) < 50", "--slo", "runs >= 1",
        ])
        assert args.monitor_port == 0
        assert args.snapshot_interval_ms == 250
        assert args.slo == ["p99(synthesis_ms) < 50", "runs >= 1"]

    def test_report_json_and_slo_flags(self):
        args = build_parser().parse_args(
            ["report", "x.jsonl", "--json", "--slo", "runs >= 1"]
        )
        assert args.json is True
        assert args.slo == ["runs >= 1"]


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "covid-rat" in out and "serial-dilution" in out
        assert "evaluation" in out and "pattern-study" in out

    def test_run_unknown_bioassay(self, capsys):
        assert main(["run", "--bioassay", "ghost"]) == 2
        assert "unknown bioassay" in capsys.readouterr().err

    def test_run_small(self, capsys):
        code = main([
            "run", "--bioassay", "master-mix", "--width", "40",
            "--height", "24", "--seed", "3", "--max-cycles", "400",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "run 1: ok" in out

    def test_run_baseline_with_wear(self, capsys):
        code = main([
            "run", "--bioassay", "covid-rat", "--router", "baseline",
            "--width", "40", "--height", "24", "--show-wear",
            "--max-cycles", "400",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "chip wear" in out

    def test_synth_prints_route(self, capsys):
        code = main(["synth", "--width", "24", "--height", "14",
                     "--goal", "18", "8"])
        out = capsys.readouterr().out
        assert code == 0
        assert "E[cycles]" in out
        assert "S" in out and "G" in out

    def test_synth_unreachable(self, capsys):
        # kill almost everything: goal becomes unreachable
        code = main([
            "synth", "--width", "24", "--height", "14", "--goal", "18", "8",
            "--dead-fraction", "0.97", "--seed", "5",
        ])
        assert code == 1
        assert "no strategy" in capsys.readouterr().out

    def test_degradation_table(self, capsys):
        assert main(["degradation", "--tau", "0.7", "--c", "300",
                     "--n-max", "600"]) == 0
        out = capsys.readouterr().out
        assert "D(n)" in out and "H(n)" in out


class TestTelemetryCli:
    RUN = ["run", "--bioassay", "master-mix", "--width", "40",
           "--height", "24", "--seed", "3", "--max-cycles", "400"]

    def test_run_rejects_bad_slo(self, capsys):
        assert main(self.RUN + ["--slo", "not an slo"]) == 2
        assert "cannot parse SLO" in capsys.readouterr().err

    def test_run_slo_gate(self, capsys):
        # a passing objective and a violated one: violation wins, exit 4
        code = main(self.RUN + [
            "--slo", "completion_probability == 1.0",
            "--slo", "ghost.metric > 0",
        ])
        out = capsys.readouterr().out
        assert code == 4
        assert "ok " in out and "completion_probability == 1" in out
        assert "VIOLATED" in out and "(missing)" in out

    def test_run_slo_all_pass_exit_0(self, capsys):
        code = main(self.RUN + ["--slo", "completion_probability == 1.0"])
        out = capsys.readouterr().out
        assert code == 0
        assert "SLOs:" in out and "VIOLATED" not in out

    def test_report_empty_journal(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main(["report", str(path)]) == 0
        assert "no events" in capsys.readouterr().out

    def test_report_empty_journal_json(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main(["report", str(path), "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["events"] == 0

    def test_report_json_and_slo_round_trip(self, tmp_path, capsys):
        journal = tmp_path / "run.jsonl"
        assert main(self.RUN + ["--journal", str(journal)]) == 0
        capsys.readouterr()

        code = main(["report", str(journal), "--json",
                     "--slo", "completion_probability == 1.0",
                     "--slo", "p99(synthesis_ms) < 1e9"])
        out = capsys.readouterr().out
        assert code == 0
        summary = json.loads(out)
        assert summary["runs"][0]["success"] is True
        assert summary["synthesis_ms"]["count"] >= 1
        assert [entry["ok"] for entry in summary["slos"]] == [True, True]

        # same objectives, terminal mode, with a violation: exit 4
        code = main(["report", str(journal),
                     "--slo", "p99(synthesis_ms) < 0"])
        out = capsys.readouterr().out
        assert code == 4
        assert "VIOLATED" in out
