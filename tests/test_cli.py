"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.bioassay == "covid-rat"
        assert args.router == "adaptive"

    def test_synth_coordinates(self):
        args = build_parser().parse_args(
            ["synth", "--start", "2", "3", "--goal", "10", "12"]
        )
        assert args.start == [2, 3]
        assert args.goal == [10, 12]


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "covid-rat" in out and "serial-dilution" in out
        assert "evaluation" in out and "pattern-study" in out

    def test_run_unknown_bioassay(self, capsys):
        assert main(["run", "--bioassay", "ghost"]) == 2
        assert "unknown bioassay" in capsys.readouterr().err

    def test_run_small(self, capsys):
        code = main([
            "run", "--bioassay", "master-mix", "--width", "40",
            "--height", "24", "--seed", "3", "--max-cycles", "400",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "run 1: ok" in out

    def test_run_baseline_with_wear(self, capsys):
        code = main([
            "run", "--bioassay", "covid-rat", "--router", "baseline",
            "--width", "40", "--height", "24", "--show-wear",
            "--max-cycles", "400",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "chip wear" in out

    def test_synth_prints_route(self, capsys):
        code = main(["synth", "--width", "24", "--height", "14",
                     "--goal", "18", "8"])
        out = capsys.readouterr().out
        assert code == 0
        assert "E[cycles]" in out
        assert "S" in out and "G" in out

    def test_synth_unreachable(self, capsys):
        # kill almost everything: goal becomes unreachable
        code = main([
            "synth", "--width", "24", "--height", "14", "--goal", "18", "8",
            "--dead-fraction", "0.97", "--seed", "5",
        ])
        assert code == 1
        assert "no strategy" in capsys.readouterr().out

    def test_degradation_table(self, capsys):
        assert main(["degradation", "--tau", "0.7", "--c", "300",
                     "--n-max", "600"]) == 0
        out = capsys.readouterr().out
        assert "D(n)" in out and "H(n)" in out
