"""Tests for the speculative synthesis engine (worker pool + router wiring).

The pool size can be overridden for CI matrix legs via the
``REPRO_TEST_WORKERS`` environment variable (default 2).
"""

from __future__ import annotations

import os
import time
from concurrent.futures import Future

import numpy as np
import pytest

from repro.engine.pool import _Speculation


def inject_inflight(engine, key, future=None):
    """Register a hand-made in-flight speculation (tests only)."""
    if len(key) == 2:  # (job key, fingerprint) shorthand: default tenant
        key = ("", *key)
    spec = _Speculation(
        future if future is not None else Future(), {}, time.monotonic()
    )
    engine._pending[key] = spec
    engine._by_job[key[:2]] = key
    return spec

from repro.bioassay.library import EVALUATION_BIOASSAYS
from repro.bioassay.planner import plan
from repro.biochip.chip import MedaChip
from repro.biochip.simulator import MedaSimulator
from repro.biochip.trace import ExecutionTrace
from repro.core.baseline import AdaptiveRouter
from repro.core.routing_job import RoutingJob, zone
from repro.core.scheduler import HybridScheduler
from repro.core.synthesis import synthesize
from repro.engine import StrategyStore, SynthesisEngine
from repro.geometry.rect import Rect

WORKERS = int(os.environ.get("REPRO_TEST_WORKERS", "2"))

W, H = 30, 20


def job(start=Rect(2, 2, 5, 5), goal=Rect(20, 10, 23, 13)) -> RoutingJob:
    return RoutingJob(start, goal, zone(start, goal, W, H))


def full_health() -> np.ndarray:
    return np.full((W, H), 3)


def wait_for(engine: SynthesisEngine, the_job, health, timeout=60.0):
    """Wait for the in-flight work to finish, then consume it via take().

    take() itself cannot be used for polling: a pending-miss *discards*
    the speculation (the production caller immediately synthesizes
    synchronously, so a later completion could never be consumed).
    """
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if all(s.future.done() for s in engine._pending.values()):
            return engine.take(the_job, health)
        time.sleep(0.05)
    pytest.fail("speculation never completed")


@pytest.fixture
def engine():
    eng = SynthesisEngine(workers=WORKERS)
    yield eng
    eng.close()


class TestEngineLifecycle:
    def test_workers_one_disables_pool(self):
        eng = SynthesisEngine(workers=1)
        assert not eng.pooled
        assert not eng.submit(job(), full_health())
        assert eng.take(job(), full_health()) == ("absent", None)
        eng.close()

    def test_close_counts_unconsumed_as_wasted(self):
        eng = SynthesisEngine(workers=WORKERS)
        assert eng.submit(job(), full_health())
        eng.close()
        assert eng.wasted == 1

    def test_store_facade_without_pool(self, tmp_path):
        store = StrategyStore(tmp_path / "s.sqlite")
        eng = SynthesisEngine(workers=1, store=store)
        from repro.core.strategy import strategy_from_synthesis

        strategy = strategy_from_synthesis(job(), synthesize(job(), full_health()))
        eng.store_put(job(), full_health(), strategy)
        assert eng.store_get(job(), full_health()) == strategy
        eng.close()
        assert not store.usable or store._conn is None


class TestSpeculation:
    def test_hit_matches_synchronous_synthesis(self, engine):
        assert engine.submit(job(), full_health())
        status, speculated = wait_for(engine, job(), full_health())
        assert status == "hit"
        direct = synthesize(job(), full_health())
        assert speculated.policy.decisions == direct.strategy.decisions
        assert speculated.expected_cycles == pytest.approx(
            direct.expected_cycles
        )

    def test_duplicate_submission_rejected_while_inflight(self, engine):
        assert engine.submit(job(), full_health())
        assert not engine.submit(job(), full_health())

    def test_pending_counts_as_miss_and_leaves_future(self, engine):
        """A speculation that has not completed when the strategy is needed
        is a miss: the caller falls back to synchronous synthesis."""
        key = (job().key(), b"fp")
        inject_inflight(engine, key)  # never completes
        status, strategy = engine.take(job(), full_health())
        # The manufactured fingerprint cannot match, so this reports stale;
        # a genuine in-flight future reports pending (exercised below).
        assert status in ("stale", "pending")
        assert strategy is None

    def test_inflight_pending_falls_back(self, engine):
        from repro.core.strategy import health_fingerprint

        key = (job().key(), health_fingerprint(full_health(), job().hazard))
        inject_inflight(engine, key)  # never completes
        status, strategy = engine.take(job(), full_health())
        assert (status, strategy) == ("pending", None)
        assert engine.misses == 1
        # The pending-miss discards the speculation (counted wasted) so the
        # job key is immediately free for fresh resubmission.
        assert engine.wasted == 1
        assert ("", job().key()) not in engine._by_job
        engine.close()
        assert engine.wasted == 1  # not double-counted at close

    def test_stale_fingerprint_discarded(self, engine):
        assert engine.submit(job(), full_health())
        degraded = full_health()
        degraded[10, 8] = 1  # inside the hazard zone
        status, strategy = engine.take(job(), degraded)
        assert (status, strategy) == ("stale", None)
        assert engine.stale == 1 and engine.wasted == 1
        # The slot is free again for a fresh speculation.
        assert engine.submit(job(), degraded)

    def test_no_plan_is_definitive_and_not_resubmitted(self, engine):
        walled = full_health()
        walled[12, :] = 0
        assert engine.submit(job(), walled)
        status, strategy = wait_for(engine, job(), walled)
        assert (status, strategy) == ("no-plan", None)
        assert not engine.submit(job(), walled)


class TestRouterIntegration:
    def test_prefetched_plan_skips_synchronous_synthesis(self, engine):
        router = AdaptiveRouter(engine=engine)
        assert router.prefetch(job(), full_health())
        # Wait for the worker without consuming the speculation, then plan:
        # the strategy must come from the speculation, not a synchronous
        # synthesis.
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            if all(s.future.done() for s in engine._pending.values()):
                break
            time.sleep(0.05)
        strategy = router.plan(job(), full_health())
        assert strategy is not None
        assert router.syntheses == 0  # served speculatively
        assert engine.hits == 1
        assert router.library.contains(job(), full_health())

    def test_prefetch_skips_library_hits(self, engine):
        router = AdaptiveRouter(engine=engine)
        router.plan(job(), full_health())  # synchronous, fills the library
        assert not router.prefetch(job(), full_health())

    def test_plan_falls_back_when_speculation_pending(self, engine):
        from repro.core.strategy import health_fingerprint

        router = AdaptiveRouter(engine=engine)
        key = (job().key(), health_fingerprint(full_health(), job().hazard))
        inject_inflight(engine, key)  # never completes
        strategy = router.plan(job(), full_health())
        assert strategy is not None
        assert router.syntheses == 1  # synchronous fallback
        assert engine.misses == 1


class TestWarmStartFromStore:
    def test_store_loaded_values_seed_resynthesis(self, tmp_path):
        """A strategy loaded from the persistent store must install its
        values as the job's warm-start seed, so the next resynthesis of the
        same job (changed health) is warm-seeded — and still converges to
        the synchronous answer."""
        from repro import perf
        from repro.core.strategy import strategy_from_synthesis

        path = tmp_path / "s.sqlite"
        with StrategyStore(path) as store:
            store.put(
                job(),
                full_health(),
                strategy_from_synthesis(job(), synthesize(job(), full_health())),
            )

        engine = SynthesisEngine(workers=1, store=StrategyStore(path))
        router = AdaptiveRouter(engine=engine)
        try:
            loaded = router.plan(job(), full_health())
            assert loaded is not None
            assert router.syntheses == 0  # came from the store
            assert router.library.warm_start(job()) == loaded.policy.values

            degraded = full_health()
            degraded[10, 8] = 1  # inside the zone: forces a resynthesis
            seeded_before = perf.get("synthesis.warm_seeded")
            warmed = router.plan(job(), degraded)
            assert perf.get("synthesis.warm_seeded") == seeded_before + 1
            assert warmed is not None
            direct = synthesize(job(), degraded)
            assert warmed.expected_cycles == pytest.approx(
                direct.expected_cycles, rel=1e-4
            )
        finally:
            engine.close()


class TestDeterminism:
    def test_pooled_prefetch_matches_serial_execution(self):
        """The determinism guard: speculation and presynthesis change
        latency only.  Serial and pooled+prefetch executions of the same
        bioassay and seeds must produce identical traces."""
        graph = plan(EVALUATION_BIOASSAYS["covid-rat"](), 40, 24)

        def execute(engine):
            chip = MedaChip.sample(
                40, 24, np.random.default_rng(11),
                tau_range=(0.80, 0.90), c_range=(400.0, 900.0),
            )
            router = AdaptiveRouter(engine=engine)
            scheduler = HybridScheduler(graph, router, 40, 24)
            trace = ExecutionTrace()
            sim = MedaSimulator(chip, np.random.default_rng(12), trace=trace)
            if engine is not None and engine.pooled:
                scheduler.presynthesize(chip.health())
            result = sim.run(scheduler, max_cycles=600)
            return result, trace

        serial_result, serial_trace = execute(None)
        engine = SynthesisEngine(workers=WORKERS)
        try:
            pooled_result, pooled_trace = execute(engine)
        finally:
            engine.close()

        assert pooled_result.success == serial_result.success
        assert pooled_result.cycles == serial_result.cycles
        assert pooled_result.resyntheses == serial_result.resyntheses
        assert len(pooled_trace.frames) == len(serial_trace.frames)
        for sf, pf in zip(serial_trace.frames, pooled_trace.frames):
            assert pf.cycle == sf.cycle
            assert pf.droplets == sf.droplets
            assert pf.moving == sf.moving
