"""Tests for offline strategy-library pre-population (Sec. VI-D)."""

from __future__ import annotations

import numpy as np

from repro.bioassay.library import covid_rat, master_mix
from repro.bioassay.planner import plan
from repro.biochip.chip import MedaChip
from repro.biochip.simulator import MedaSimulator
from repro.core.baseline import AdaptiveRouter
from repro.core.offline import precompute_library, routing_jobs_of
from repro.core.scheduler import HybridScheduler

W, H = 40, 24


class TestRoutingJobsOf:
    def test_counts_match_decomposition(self):
        graph = plan(covid_rat(), W, H)
        jobs = routing_jobs_of(graph, W, H)
        # covid-rat: mix (2 jobs) + mag (1) + out (1); dispenses excluded.
        assert len(jobs) == 4

    def test_unplaced_graph_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            routing_jobs_of(covid_rat(), W, H)


class TestPrecompute:
    def test_report_counts(self):
        graph = plan(master_mix(), W, H)
        router = AdaptiveRouter()
        report = precompute_library(graph, router, W, H)
        assert report.jobs == report.synthesized + report.skipped_trivial
        assert report.synthesized == len(router.library)
        assert report.seconds > 0

    def test_warm_library_reduces_online_synthesis(self):
        graph = plan(master_mix(), W, H)
        chip_rng = np.random.default_rng(0)

        def execute(router: AdaptiveRouter) -> int:
            chip = MedaChip.sample(W, H, chip_rng.spawn(1)[0],
                                   tau_range=(0.95, 0.99),
                                   c_range=(5000, 9000))
            scheduler = HybridScheduler(graph, router, W, H)
            result = MedaSimulator(chip, np.random.default_rng(1)).run(
                scheduler, 400
            )
            assert result.success
            return router.syntheses

        cold = AdaptiveRouter()
        cold_syntheses = execute(cold)

        warm = AdaptiveRouter()
        report = precompute_library(graph, warm, W, H)
        before = warm.syntheses
        online = execute(warm) - before
        # The offline stage absorbs at least part (usually all) of the
        # first execution's synthesis work.
        assert report.synthesized > 0
        assert online < cold_syntheses
