"""Tests for the MEDA chip state (degradation bookkeeping)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.biochip.chip import MedaChip
from repro.degradation.faults import FaultInjector, FaultMode


class TestConstruction:
    def test_sampled_chip_dimensions(self, rng):
        chip = MedaChip.sample(20, 12, rng)
        assert (chip.width, chip.height) == (20, 12)
        assert chip.actuations.sum() == 0

    def test_sampled_constants_in_range(self, rng):
        chip = MedaChip.sample(10, 10, rng, tau_range=(0.6, 0.7),
                               c_range=(100, 200))
        assert chip.tau.min() >= 0.6 and chip.tau.max() <= 0.7
        assert chip.c.min() >= 100 and chip.c.max() <= 200

    def test_invalid_tau_rejected(self):
        with pytest.raises(ValueError):
            MedaChip(tau=np.full((4, 4), 1.5), c=np.full((4, 4), 100.0))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            MedaChip(tau=np.full((4, 4), 0.8), c=np.full((3, 4), 100.0))


class TestDegradation:
    def test_fresh_chip_fully_healthy(self, rng):
        chip = MedaChip.sample(8, 8, rng)
        assert (chip.degradation() == 1.0).all()
        assert (chip.health() == 3).all()
        assert (chip.true_force() == 1.0).all()

    def test_actuation_wears_only_actuated_cells(self, rng):
        chip = MedaChip.sample(8, 8, rng, tau_range=(0.5, 0.6),
                               c_range=(10, 20))
        u = np.zeros((8, 8), dtype=int)
        u[2, 3] = 1
        for _ in range(30):
            chip.apply_actuation(u)
        d = chip.degradation()
        assert d[2, 3] < 0.5
        mask = np.ones((8, 8), bool)
        mask[2, 3] = False
        assert (d[mask] == 1.0).all()

    def test_force_is_degradation_squared(self, rng):
        chip = MedaChip.sample(6, 6, rng, tau_range=(0.5, 0.9), c_range=(5, 50))
        chip.apply_actuation(np.ones((6, 6), dtype=int) * 7)
        np.testing.assert_allclose(chip.true_force(), chip.degradation() ** 2)

    def test_health_quantizes_degradation(self, rng):
        chip = MedaChip.sample(6, 6, rng, tau_range=(0.7, 0.8), c_range=(30, 40))
        chip.apply_actuation(np.full((6, 6), 20, dtype=int))
        d = chip.degradation()
        h = chip.health()
        np.testing.assert_array_equal(h, np.minimum((4 * d).astype(int), 3))

    def test_wrong_actuation_shape_rejected(self, rng):
        chip = MedaChip.sample(6, 6, rng)
        with pytest.raises(ValueError):
            chip.apply_actuation(np.zeros((5, 6), dtype=int))

    def test_total_actuations(self, rng):
        chip = MedaChip.sample(4, 4, rng)
        u = np.zeros((4, 4), dtype=int)
        u[0, 0] = u[1, 1] = 1
        chip.apply_actuation(u)
        chip.apply_actuation(u)
        assert chip.total_actuations == 4


class TestFaults:
    def test_faulty_cell_dies_suddenly(self, rng):
        plan = FaultInjector(FaultMode.UNIFORM, fraction=1.0,
                             fail_range=(5, 5)).inject(4, 4, rng)
        chip = MedaChip(
            tau=np.full((4, 4), 0.99), c=np.full((4, 4), 1000.0),
            fault_plan=plan,
        )
        u = np.ones((4, 4), dtype=int)
        for _ in range(4):
            chip.apply_actuation(u)
        assert (chip.degradation() > 0.9).all()
        chip.apply_actuation(u)  # actuation count reaches 5
        assert (chip.degradation() == 0.0).all()
        assert (chip.health() == 0).all()

    def test_fault_plan_shape_checked(self, rng):
        plan = FaultInjector().inject(5, 5, rng)
        with pytest.raises(ValueError):
            MedaChip(tau=np.full((4, 4), 0.8), c=np.full((4, 4), 100.0),
                     fault_plan=plan)
