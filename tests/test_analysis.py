"""Tests for the analysis layer: correlations, metrics, table rendering."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.correlation import (
    _pairs_at_distance,
    correlation_vs_distance,
    pairwise_correlation,
)
from repro.analysis.metrics import (
    chip_factory_for,
    probability_of_success,
    run_execution,
    trial_cycles,
)
from repro.analysis.tables import format_series, format_table
from repro.bioassay.library import covid_rat
from repro.bioassay.planner import plan
from repro.core.baseline import AdaptiveRouter, BaselineRouter


class TestPairwiseCorrelation:
    def test_identical_vectors(self):
        a = np.array([0, 1, 1, 0, 1])
        assert pairwise_correlation(a, a) == pytest.approx(1.0)

    def test_opposite_vectors(self):
        a = np.array([0, 1, 1, 0, 1])
        assert pairwise_correlation(a, 1 - a) == pytest.approx(-1.0)

    def test_constant_vector_is_nan(self):
        assert np.isnan(pairwise_correlation(np.zeros(5), np.ones(5)))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            pairwise_correlation(np.zeros(5), np.zeros(4))


class TestPairsAtDistance:
    def test_simple_grid(self):
        cells = [(0, 0), (1, 0), (0, 1), (2, 0)]
        pairs = _pairs_at_distance(cells, 1)
        as_sets = {frozenset(p) for p in pairs}
        assert frozenset({(0, 0), (1, 0)}) in as_sets
        assert frozenset({(0, 0), (0, 1)}) in as_sets
        assert frozenset({(1, 0), (2, 0)}) in as_sets

    def test_no_duplicates(self):
        cells = [(i, j) for i in range(5) for j in range(5)]
        pairs = _pairs_at_distance(cells, 2)
        as_sets = [frozenset(p) for p in pairs]
        assert len(as_sets) == len(set(as_sets))

    def test_distance_respected(self):
        cells = [(i, j) for i in range(6) for j in range(6)]
        for d in (1, 2, 3):
            for (a, b) in _pairs_at_distance(cells, d):
                assert abs(a[0] - b[0]) + abs(a[1] - b[1]) == d

    def test_invalid_distance(self):
        with pytest.raises(ValueError):
            _pairs_at_distance([(0, 0)], 0)


class TestCorrelationVsDistance:
    def test_clustered_actuation_decays_with_distance(self):
        """A moving 3-wide activity band produces correlations that fall
        with Manhattan distance — the Fig. 3 mechanism in miniature."""
        rng = np.random.default_rng(0)
        width, height, cycles = 16, 12, 160
        vectors = np.zeros((width, height, cycles), dtype=np.uint8)
        x = 3.0
        for k in range(cycles):
            x = (x + 0.25) % (width - 4)
            xi = int(x)
            vectors[xi : xi + 3, 4:8, k] = 1
        curve = correlation_vs_distance(vectors, [1, 2, 3, 4, 5], rng=rng)
        vals = curve.mean_correlation
        assert vals[0] > vals[-1]
        assert vals[0] > 0.5

    def test_pair_counts_reported(self):
        rng = np.random.default_rng(0)
        vectors = rng.integers(0, 2, size=(8, 8, 50)).astype(np.uint8)
        curve = correlation_vs_distance(vectors, [1, 3], rng=rng)
        assert (curve.num_pairs > 0).all()
        assert curve.as_dict().keys() == {1, 3}

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            correlation_vs_distance(np.zeros((4, 4)), [1])


class TestTables:
    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [[1, 2.5], ["xx", 3.25]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert "2.500" in out and "3.250" in out

    def test_format_table_row_length_checked(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_format_series(self):
        out = format_series("k", [100, 200], {"adaptive": [0.9, 0.8],
                                              "baseline": [0.5, 0.2]})
        assert "adaptive" in out and "baseline" in out
        assert "0.900" in out

    def test_special_float_rendering(self):
        out = format_table(["v"], [[float("inf")], [float("nan")]])
        assert "inf" in out and "nan" in out


def _quick_setup():
    graph = plan(covid_rat(), 30, 20)
    chip_factory = chip_factory_for(30, 20, tau_range=(0.9, 0.99),
                                    c_range=(2000, 4000))
    return graph, chip_factory


class TestMetrics:
    def test_run_execution_succeeds_on_healthy_chip(self):
        graph, chip_factory = _quick_setup()
        chip = chip_factory(np.random.default_rng(0))
        result = run_execution(graph, chip, AdaptiveRouter(),
                               np.random.default_rng(1), max_cycles=400)
        assert result.success

    def test_pos_curve_monotone_in_budget(self):
        graph, chip_factory = _quick_setup()
        pos = probability_of_success(
            graph, chip_factory,
            lambda w, h: AdaptiveRouter(),
            k_max_values=[20, 150, 400],
            n_chips=2, runs_per_chip=2, seed=0,
        )
        assert pos.executions == 4
        assert (np.diff(pos.probability) >= 0).all()
        assert pos.at(400) >= pos.at(20)

    def test_pos_unknown_budget_rejected(self):
        graph, chip_factory = _quick_setup()
        pos = probability_of_success(
            graph, chip_factory, lambda w, h: AdaptiveRouter(),
            k_max_values=[100], n_chips=1, runs_per_chip=1,
        )
        with pytest.raises(KeyError):
            pos.at(123)

    def test_trial_cycles_reports_statistics(self):
        graph, chip_factory = _quick_setup()
        result = trial_cycles(
            graph, chip_factory, lambda w, h: BaselineRouter(w, h),
            n_trials=2, target_successes=2, k_max_total=500, seed=0,
        )
        assert result.trials == 2
        assert result.mean_cycles > 0
        assert result.std_cycles >= 0
        assert 0 <= result.mean_executions_to_first_failure <= 2

    def test_empty_kmax_rejected(self):
        graph, chip_factory = _quick_setup()
        with pytest.raises(ValueError):
            probability_of_success(graph, chip_factory,
                                   lambda w, h: AdaptiveRouter(), [])
