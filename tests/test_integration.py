"""End-to-end integration: every benchmark bioassay executes on a healthy chip.

These are the system-level smoke tests of the whole stack — planner, RJ
helper, synthesis, scheduler, simulator — for all nine bioassays and both
routers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bioassay.library import ALL_BIOASSAYS, EVALUATION_BIOASSAYS
from repro.bioassay.planner import plan
from repro.biochip.chip import MedaChip
from repro.biochip.simulator import MedaSimulator
from repro.core.baseline import AdaptiveRouter, BaselineRouter
from repro.core.scheduler import HybridScheduler

W, H = 60, 30


def healthy_chip(seed: int) -> MedaChip:
    return MedaChip.sample(
        W, H, np.random.default_rng(seed),
        tau_range=(0.95, 0.99), c_range=(5000, 9000),
    )


@pytest.mark.parametrize("name", sorted(ALL_BIOASSAYS))
def test_bioassay_completes_with_adaptive_router(name: str):
    graph = plan(ALL_BIOASSAYS[name](), W, H)
    scheduler = HybridScheduler(graph, AdaptiveRouter(), W, H)
    sim = MedaSimulator(healthy_chip(3), np.random.default_rng(4))
    result = sim.run(scheduler, max_cycles=1200)
    assert result.success, f"{name}: {result.failure_reason}"
    assert result.cycles > 0


@pytest.mark.parametrize("name", sorted(EVALUATION_BIOASSAYS))
def test_bioassay_completes_with_baseline_router(name: str):
    graph = plan(EVALUATION_BIOASSAYS[name](), W, H)
    scheduler = HybridScheduler(graph, BaselineRouter(W, H), W, H)
    sim = MedaSimulator(healthy_chip(5), np.random.default_rng(6))
    result = sim.run(scheduler, max_cycles=1200)
    assert result.success, f"{name}: {result.failure_reason}"


def test_executions_are_seed_reproducible():
    graph = plan(EVALUATION_BIOASSAYS["covid-rat"](), W, H)

    def one() -> tuple[bool, int]:
        scheduler = HybridScheduler(graph, AdaptiveRouter(), W, H)
        sim = MedaSimulator(healthy_chip(7), np.random.default_rng(8))
        r = sim.run(scheduler, max_cycles=600)
        return (r.success, r.cycles)

    assert one() == one()


def test_adaptive_survives_where_baseline_stalls():
    """On a chip with an early-failing dead band across the main corridor,
    the adaptive router detours (or reports no-route) while the baseline
    pushes into the dead cells and stalls to the cycle cap."""
    from repro.degradation.faults import FaultPlan

    def banded_chip() -> MedaChip:
        faulty = np.zeros((W, H), dtype=bool)
        faulty[28:32, 2:26] = True  # dead band with a gap at the top
        fail_at = np.full((W, H), np.inf)
        fail_at[faulty] = 0
        return MedaChip(
            tau=np.full((W, H), 0.99), c=np.full((W, H), 9000.0),
            fault_plan=FaultPlan(faulty=faulty, fail_at=fail_at),
        )

    from repro.bioassay.ops import MO, MOType
    from repro.bioassay.seqgraph import SequencingGraph

    graph = SequencingGraph("g", [
        MO("d", MOType.DIS, size=(4, 4), locs=((8.5, 2.5),)),
        MO("m", MOType.MAG, pre=("d",), locs=((45.5, 15.5),), hold_cycles=2),
        MO("o", MOType.OUT, pre=("m",), locs=((57.5, 15.5),)),
    ])
    adaptive = HybridScheduler(graph, AdaptiveRouter(), W, H)
    res_a = MedaSimulator(banded_chip(), np.random.default_rng(1)).run(
        adaptive, max_cycles=400
    )
    baseline = HybridScheduler(graph, BaselineRouter(W, H), W, H)
    res_b = MedaSimulator(banded_chip(), np.random.default_rng(1)).run(
        baseline, max_cycles=400
    )
    assert res_a.success, res_a.failure_reason
    assert not res_b.success
    assert res_b.failure == "max-cycles"
