"""System-level invariants, checked over randomized executions.

These tests exercise the whole stack (planner → scheduler → simulator) under
randomized chips and assert properties that must hold regardless of the
sampled randomness:

* chip health is monotone non-increasing per microelectrode;
* droplets of different MOs never come within merging distance;
* droplets never leave their routing jobs' hazard bounds;
* every cycle actuates exactly the cells under the planned targets.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bioassay.library import EVALUATION_BIOASSAYS
from repro.bioassay.planner import plan
from repro.biochip.chip import MedaChip
from repro.biochip.simulator import MedaSimulator
from repro.biochip.trace import ExecutionTrace
from repro.core.baseline import AdaptiveRouter, BaselineRouter
from repro.core.scheduler import HybridScheduler

W, H = 60, 30


def _traced_run(name: str, seed: int, router_kind: str,
                tau_range, c_range, max_cycles: int = 900):
    graph = plan(EVALUATION_BIOASSAYS[name](), W, H)
    chip = MedaChip.sample(W, H, np.random.default_rng(seed),
                           tau_range=tau_range, c_range=c_range)
    router = (AdaptiveRouter() if router_kind == "adaptive"
              else BaselineRouter(W, H))
    trace = ExecutionTrace()
    scheduler = HybridScheduler(graph, router, W, H)
    sim = MedaSimulator(chip, np.random.default_rng(seed + 1), trace=trace)
    result = sim.run(scheduler, max_cycles)
    return chip, trace, result


class TestHealthMonotonicity:
    @given(st.integers(0, 1000))
    @settings(max_examples=10, deadline=None)
    def test_health_never_recovers(self, seed: int):
        chip = MedaChip.sample(10, 8, np.random.default_rng(seed),
                               tau_range=(0.4, 0.9), c_range=(5, 80))
        rng = np.random.default_rng(seed + 1)
        previous = chip.health()
        for _ in range(30):
            u = (rng.random((10, 8)) < 0.3).astype(int)
            chip.apply_actuation(u)
            current = chip.health()
            assert (current <= previous).all()
            previous = current


class TestExecutionInvariants:
    @pytest.mark.parametrize("router_kind", ["adaptive", "baseline"])
    @pytest.mark.parametrize("seed", [0, 7])
    def test_no_cross_mo_proximity(self, router_kind: str, seed: int):
        """No two droplets ever render within merging distance unless the
        scheduler merged them intentionally (same frame, same MO)."""
        _, trace, result = _traced_run(
            "covid-pcr", seed, router_kind,
            tau_range=(0.6, 0.9), c_range=(150, 350),
        )
        # The execution must not have died of an unintended merge.
        assert result.failure != "unintended-merge"
        for frame in trace.frames:
            rects = list(frame.droplets.values())
            for i, a in enumerate(rects):
                for b in rects[i + 1:]:
                    # Any adjacency surviving a frame would have been merged
                    # or flagged by the scheduler; seeing one here means the
                    # spatial fencing failed.
                    assert not a.overlaps(b)

    def test_droplets_stay_on_chip(self):
        _, trace, _ = _traced_run(
            "serial-dilution", 3, "adaptive",
            tau_range=(0.5, 0.9), c_range=(150, 350),
        )
        for frame in trace.frames:
            for rect in frame.droplets.values():
                assert 1 <= rect.xa and rect.xb <= W
                assert 1 <= rect.ya and rect.yb <= H

    def test_actuations_match_droplet_footprints(self):
        """Cumulative actuations equal the sum of per-cycle target areas
        (every planned pattern is actuated, nothing else is)."""
        chip, trace, result = _traced_run(
            "master-mix", 5, "adaptive",
            tau_range=(0.9, 0.99), c_range=(2000, 4000),
        )
        assert result.success
        # Per-frame totals must grow by at most the droplet areas plus the
        # moving droplets' target patterns (same area as the droplet).
        for a, b in zip(trace.frames, trace.frames[1:]):
            delta = b.total_actuations - a.total_actuations
            max_area = sum(r.area for r in b.droplets.values()) + 64
            assert 0 <= delta <= max_area + 64

    def test_seed_reproducibility_across_routers(self):
        r1 = _traced_run("covid-rat", 11, "adaptive",
                         tau_range=(0.5, 0.9), c_range=(150, 350))[2]
        r2 = _traced_run("covid-rat", 11, "adaptive",
                         tau_range=(0.5, 0.9), c_range=(150, 350))[2]
        assert (r1.success, r1.cycles, r1.total_actuations) == (
            r2.success, r2.cycles, r2.total_actuations
        )


class TestDegradedExecutions:
    @given(st.integers(0, 100))
    @settings(max_examples=4, deadline=None)
    def test_executions_terminate_cleanly(self, seed: int):
        """On harshly degrading chips every execution ends in one of the
        defined outcomes, never an exception."""
        _, _, result = _traced_run(
            "covid-rat", seed, "adaptive",
            tau_range=(0.3, 0.6), c_range=(5, 40), max_cycles=300,
        )
        assert result.failure in (None, "no-route", "max-cycles",
                                  "unintended-merge")
