"""Placement invariants: every library assay (and seeded random graphs)
must place with in-bounds, pairwise-disjoint module slots and
dispense/exit ports — with and without quarantined zones."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bioassay.library import ALL_BIOASSAYS
from repro.bioassay.ops import MO, MOType
from repro.bioassay.planner import plan
from repro.bioassay.seqgraph import SequencingGraph
from repro.core.routing_job import RJHelper
from repro.geometry.rect import Rect
from repro.reconfig import ReconfigPolicy

CHIPS = [(60, 30), (40, 24)]
SLOT_TYPES = (MOType.MIX, MOType.DLT, MOType.SPT, MOType.MAG)


def _placement_rects(graph: SequencingGraph, width: int, height: int):
    """(dispense ports, exit ports, slot footprints) of a placed graph."""
    helper = RJHelper(width, height)
    dispense, exits, slots = [], [], []
    for mo in graph.mos:
        dec = helper.decompose(mo)
        if mo.type is MOType.DIS:
            dispense.extend(j.goal for j in dec.jobs)
        elif mo.type in (MOType.OUT, MOType.DSC):
            exits.extend(j.goal for j in dec.jobs)
        elif mo.type in SLOT_TYPES:
            for x, y in mo.locs:
                slots.append(Rect(int(x) - 2, int(y) - 2,
                                  int(x) + 3, int(y) + 3))
    return dispense, exits, slots


def _assert_invariants(graph, width, height):
    dispense, exits, slots = _placement_rects(graph, width, height)
    chip = Rect(1, 1, width, height)
    for rect in dispense + exits + slots:
        assert chip.contains(rect), f"{rect} escapes the {width}x{height} chip"
    for group, rects in (("dispense", dispense), ("exit", exits)):
        for i, a in enumerate(rects):
            for b in rects[i + 1:]:
                assert not a.overlaps(b), \
                    f"{group} ports {a} and {b} overlap on {width}x{height}"
    # Slots may be reused across *sequential* operations (the scheduler
    # serializes conflicting activations), but every slot footprint must
    # stay clear of the edge ports: a module droplet mid-operation must
    # never sit on a dispense or exit pattern.
    for slot in slots:
        for port in dispense + exits:
            assert not slot.overlaps(port), \
                f"slot {slot} overlaps port {port} on {width}x{height}"
    # Distinct slot MOs never share a slot with a *concurrent* sibling:
    # two slot MOs with no ancestor path between them must not collide.
    names = {mo.name: mo for mo in graph.mos}
    slot_mos = [mo for mo in graph.mos if mo.type in SLOT_TYPES]

    def ancestors(mo):
        seen, stack = set(), list(mo.pre)
        while stack:
            pred = stack.pop()
            if pred not in seen:
                seen.add(pred)
                stack.extend(names[pred].pre)
        return seen

    lineage = {mo.name: ancestors(mo) for mo in slot_mos}
    for i, a in enumerate(slot_mos):
        for b in slot_mos[i + 1:]:
            related = (a.name in lineage[b.name]
                       or b.name in lineage[a.name])
            if not related and set(a.locs) & set(b.locs):
                raise AssertionError(
                    f"concurrent MOs {a.name} and {b.name} share a slot"
                )


class TestLibraryPlacements:
    @pytest.mark.parametrize("name", sorted(ALL_BIOASSAYS))
    @pytest.mark.parametrize("size", CHIPS)
    def test_assay_places_disjoint(self, name, size):
        width, height = size
        graph = plan(ALL_BIOASSAYS[name](), width, height)
        _assert_invariants(graph, width, height)


def _random_graph(seed: int) -> SequencingGraph:
    """A seeded random mix tree: N dispenses pooled pairwise to one out."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(2, 7))
    mos = [MO(name=f"d{i}", type=MOType.DIS, size=(4, 4)) for i in range(n)]
    frontier = [f"d{i}" for i in range(n)]
    k = 0
    while len(frontier) > 1:
        a = frontier.pop(int(rng.integers(len(frontier))))
        b = frontier.pop(int(rng.integers(len(frontier))))
        name = f"m{k}"
        mos.append(MO(name=name, type=MOType.MIX, pre=(a, b), hold_cycles=4))
        frontier.append(name)
        k += 1
    mos.append(MO(name="out", type=MOType.OUT, pre=(frontier[0],),
                  pre_output=(0,)))
    return SequencingGraph(f"random-{seed}", mos)


class TestRandomGraphPlacements:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_graph_places_disjoint(self, seed):
        width, height = 60, 30
        graph = plan(_random_graph(seed), width, height)
        _assert_invariants(graph, width, height)

    def test_port_exhaustion_raises_cleanly(self):
        # Enough dispenses to overflow both the south and north edges of a
        # narrow chip must raise, not silently stack ports on top of each
        # other (the pre-fix clamping bug).
        mos = [MO(name=f"d{i}", type=MOType.DIS, size=(4, 4))
               for i in range(40)]
        frontier = [mo.name for mo in mos]
        k = 0
        while len(frontier) > 1:
            a, b = frontier.pop(0), frontier.pop(0)
            mos.append(MO(name=f"m{k}", type=MOType.MIX, pre=(a, b),
                          hold_cycles=4))
            frontier.append(f"m{k}")
            k += 1
        mos.append(MO(name="out", type=MOType.OUT, pre=(frontier[0],),
                      pre_output=(0,)))
        with pytest.raises(ValueError, match="reservoir port"):
            plan(SequencingGraph("overflow", mos), 24, 16)


class TestQuarantinedPlacements:
    @pytest.mark.parametrize("name", sorted(ALL_BIOASSAYS))
    def test_remapped_assay_stays_valid(self, name):
        width, height = 60, 30
        graph = plan(ALL_BIOASSAYS[name](), width, height)
        slot_mos = [mo for mo in graph.mos if mo.type in SLOT_TYPES]
        if not slot_mos:
            pytest.skip("assay has no module slots")
        target = slot_mos[0]
        health = np.full((width, height), 3)
        x, y = target.locs[0]
        health[max(0, int(x) - 4):int(x) + 4,
               max(0, int(y) - 4):int(y) + 4] = 0

        policy = ReconfigPolicy(width, height)
        policy.seed_placement(graph.mos)
        qmap = policy.update(health)
        helper = RJHelper(width, height)
        for mo in graph.mos:
            helper.decompose(mo)
        new = policy.remap(target, target.locs[0], health, helper)
        assert new is not None, f"{name}: no spare slot for {target.name}"
        assert not policy.placement_tainted(new)
        chip = Rect(1, 1, width, height)
        for rect in [j.goal for j in new.jobs] + list(new.output_patterns):
            assert chip.contains(rect)
            assert not qmap.overlaps(rect)
