"""Tests for cross-process telemetry propagation (repro.obs.propagate)."""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro import obs, perf
from repro.core.routing_job import RoutingJob, zone
from repro.engine import SynthesisEngine
from repro.engine.payload import correlation_id
from repro.geometry.rect import Rect
from repro.obs.journal import RunJournal
from repro.obs.metrics import MetricsRegistry
from repro.obs.propagate import WorkerCapture, capture_config, merge_telemetry

WORKERS = int(os.environ.get("REPRO_TEST_WORKERS", "2"))

W, H = 30, 16


@pytest.fixture(autouse=True)
def clean_obs():
    obs.shutdown()
    perf.reset()
    yield
    obs.shutdown()
    perf.reset()


def small_job() -> RoutingJob:
    start = Rect(2, 2, 4, 4)
    goal = Rect(20, 10, 22, 12)
    return RoutingJob(start, goal, zone(start, goal, W, H))


def wait_done(future, timeout_s: float = 60.0) -> None:
    deadline = time.monotonic() + timeout_s
    while not future.done():
        if time.monotonic() > deadline:
            raise TimeoutError("worker future never completed")
        time.sleep(0.02)


class TestCaptureConfig:
    def test_none_when_nothing_configured(self):
        assert capture_config() is None

    def test_tracing_implies_metrics(self):
        obs.configure(tracing=True)
        config = capture_config(corr="c1")
        assert config == {
            "trace": True, "journal": False, "metrics": True, "corr": "c1",
        }

    def test_metrics_flag_alone_activates(self):
        obs.configure(metrics=True)
        config = capture_config()
        assert config is not None
        assert config["trace"] is False and config["journal"] is False
        assert config["metrics"] is True


class TestWorkerCapture:
    def test_inactive_capture_is_noop(self):
        capture = WorkerCapture(None)
        with capture:
            perf.incr("inside.noop")
        assert not capture.active
        assert capture.export() is None
        # The increment landed on the ambient registry, untouched.
        assert perf.get("inside.noop") == 1

    def test_metrics_swap_and_restore(self):
        ambient = perf.registry()
        perf.incr("before", 5)
        capture = WorkerCapture({"trace": False, "journal": False,
                                 "metrics": True, "corr": None})
        with capture:
            assert perf.registry() is not ambient
            perf.incr("task.counter", 3)
            perf.observe("task_ms", 7.0)
        # Registry restored, and the task delta folded into ambient totals.
        assert perf.registry() is ambient
        assert perf.get("before") == 5
        assert perf.get("task.counter") == 3
        bundle = capture.export()
        assert bundle["metrics"]["counters"]["task.counter"] == 3
        assert bundle["metrics"]["histograms"]["task_ms"]["count"] == 1
        assert bundle["pid"] == os.getpid()

    def test_trace_and_journal_capture(self):
        capture = WorkerCapture({"trace": True, "journal": True,
                                 "metrics": False, "corr": "cc"})
        with capture:
            with obs.span("worker.solve", corr=capture.corr):
                obs.journal_event("worker.synthesis", ms=1.5)
        assert not obs.enabled()  # worker obs torn down on exit
        bundle = capture.export()
        assert capture.corr == "cc" and bundle["corr"] == "cc"
        assert [s["name"] for s in bundle["spans"]] == ["worker.solve"]
        assert bundle["spans"][0]["attrs"]["corr"] == "cc"
        assert bundle["events"][0]["event"] == "worker.synthesis"
        assert "wall_epoch_ns" in bundle


class TestMergeTelemetry:
    def test_merge_counts_empty(self):
        assert merge_telemetry(None) == {"spans": 0, "events": 0,
                                         "metrics": 0}
        assert merge_telemetry({}) == {"spans": 0, "events": 0, "metrics": 0}

    def test_span_adoption_remaps_and_reparents(self):
        tracer, _ = obs.configure(tracing=True)
        with obs.span("engine.submit") as parent:
            parent_id = parent.span_id
        bundle = {
            "pid": 4242,
            "wall_epoch_ns": tracer.wall_epoch_ns + 2_000_000,  # +2ms
            "spans": [
                {"name": "worker.solve", "id": 1, "parent": None,
                 "kind": "sync", "start_us": 10.0, "dur_us": 50.0,
                 "attrs": {}},
                {"name": "synthesis.solve", "id": 2, "parent": 1,
                 "kind": "sync", "start_us": 20.0, "dur_us": 30.0,
                 "attrs": {}},
            ],
        }
        merged = merge_telemetry(bundle, parent_span_id=parent_id)
        assert merged["spans"] == 2
        solve = tracer.find("worker.solve")[0]
        inner = tracer.find("synthesis.solve")[0]
        # Root reparented under engine.submit; child follows the id remap.
        assert solve.parent_id == parent_id
        assert inner.parent_id == solve.span_id
        assert solve.span_id != 1  # re-allocated in the parent id space
        assert solve.pid == 4242
        # Wall-clock alignment: worker t=10us shifted by the +2ms epoch gap.
        assert solve.start_us == pytest.approx(2000.0 + 10.0)

    def test_journal_replay_stamps_worker_pid_and_corr(self):
        _, journal = obs.configure(journal=RunJournal())
        bundle = {
            "pid": 777,
            "corr": "cid",
            "events": [{"seq": 9, "schema_version": 1,
                        "event": "worker.synthesis", "cycle": 3,
                        "ms": 2.0}],
        }
        merged = merge_telemetry(bundle)
        assert merged["events"] == 1
        record = journal.records[-1]
        assert record["event"] == "worker.synthesis"
        assert record["cycle"] == 3
        assert record["worker_pid"] == 777 and record["corr"] == "cid"
        assert record["seq"] == 1  # parent journal assigns its own seq

    def test_metric_merge_folds_into_registry(self):
        obs.configure(metrics=True)
        worker = MetricsRegistry()
        worker.incr("worker.solves", 2)
        worker.observe("solve_ms", 12.0)
        merged = merge_telemetry({"pid": 1, "metrics": worker.export_state()})
        assert merged["metrics"] == 1
        assert perf.get("worker.solves") == 2
        assert perf.registry().histogram("solve_ms").count == 1
        assert perf.get("obs.worker.merges") == 1

    def test_chrome_export_gets_worker_track(self):
        tracer, _ = obs.configure(tracing=True)
        merge_telemetry({
            "pid": 555,
            "spans": [{"name": "worker.solve", "id": 1, "parent": None,
                       "kind": "sync", "start_us": 0.0, "dur_us": 1.0,
                       "attrs": {}}],
        })
        events = tracer.chrome_events()
        tracks = [e for e in events if e["name"] == "process_name"]
        assert any(e["args"]["name"] == "repro worker 555" for e in tracks)
        solve = next(e for e in events if e["name"] == "worker.solve")
        assert solve["pid"] == 555


class TestPooledEndToEnd:
    def test_submit_take_merges_worker_telemetry(self):
        tracer, journal = obs.configure(tracing=True, journal=RunJournal(),
                                        metrics=True)
        job = small_job()
        health = np.full((W, H), 3)
        with SynthesisEngine(workers=WORKERS) as engine:
            assert engine.submit(job, health)
            spec = next(iter(engine._pending.values()))
            assert "telemetry" in spec.payload
            assert spec.span_id is not None
            wait_done(spec.future)
            status, strategy = engine.take(job, health)
        assert status == "hit" and strategy is not None
        solve_spans = tracer.find("worker.solve")
        assert len(solve_spans) == 1
        solve = solve_spans[0]
        submit = tracer.find("engine.submit")[0]
        assert solve.parent_id == submit.span_id
        assert solve.pid not in (None, os.getpid())
        from repro.core.strategy import health_fingerprint

        expected_corr = correlation_id(
            job.key(), health_fingerprint(health, job.hazard)
        )
        assert spec.payload["telemetry"]["corr"] == expected_corr
        assert solve.attrs["corr"] == expected_corr
        worker_events = [r for r in journal.records
                         if r["event"] == "worker.synthesis"]
        assert len(worker_events) == 1
        assert worker_events[0]["worker_pid"] == solve.pid
        assert worker_events[0]["exists"] is True
        assert perf.get("worker.solves") == 1
        assert perf.get("obs.worker.merges") >= 1

    def test_batch_telemetry_merges_once(self):
        tracer, journal = obs.configure(tracing=True, journal=RunJournal(),
                                        metrics=True)
        job_a = small_job()
        start = Rect(3, 3, 5, 5)
        goal = Rect(18, 8, 20, 10)
        job_b = RoutingJob(start, goal, zone(start, goal, W, H))
        health = np.full((W, H), 3)
        with SynthesisEngine(workers=WORKERS) as engine:
            accepted = engine.presynthesize_batch(
                [(job_a, None), (job_b, None)], health
            )
            assert accepted == 2
            future = next(iter(engine._pending.values())).future
            wait_done(future)
            status_a, _ = engine.take(job_a, health)
            status_b, _ = engine.take(job_b, health)
        assert status_a == "hit" and status_b == "hit"
        # One worker.solve span for the whole wave, under the batch span.
        solve_spans = tracer.find("worker.solve")
        assert len(solve_spans) == 1
        batch = tracer.find("engine.batch.submit")[0]
        assert solve_spans[0].parent_id == batch.span_id
        assert solve_spans[0].attrs["jobs"] == 2
        # Per-member journal events, merged exactly once.
        worker_events = [r for r in journal.records
                         if r["event"] == "worker.synthesis"]
        assert len(worker_events) == 2
        assert perf.get("worker.solves") == 2
        assert perf.get("obs.worker.merges") == 1

    def test_wasted_speculation_telemetry_salvaged_on_close(self):
        tracer, _ = obs.configure(tracing=True, metrics=True)
        job = small_job()
        health = np.full((W, H), 3)
        engine = SynthesisEngine(workers=WORKERS)
        try:
            assert engine.submit(job, health)
            spec = next(iter(engine._pending.values()))
            # Consume while still pending: a miss that discards the spec.
            status, _ = engine.take(job, health)
            if status == "pending":
                # The worker finishes anyway; close() salvages its bundle.
                wait_done(spec.future)
        finally:
            engine.close()
        assert len(tracer.find("worker.solve")) == 1
        assert perf.get("worker.solves") == 1

    def test_no_telemetry_payload_when_obs_disabled(self):
        job = small_job()
        health = np.full((W, H), 3)
        with SynthesisEngine(workers=WORKERS) as engine:
            assert engine.submit(job, health)
            spec = next(iter(engine._pending.values()))
            assert "telemetry" not in spec.payload
            wait_done(spec.future)
            status, strategy = engine.take(job, health)
        assert status == "hit" and strategy is not None
        assert "telemetry" not in spec.future.result()
