"""Tests for the simulated PCB degradation experiments (Sec. IV-A, Fig. 5-6)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.degradation.fitting import fit_capacitance_slope, fit_decay_rate
from repro.degradation.model import PAPER_FITTED_CONSTANTS
from repro.degradation.pcb import (
    ELECTRODE_SIZES_MM,
    EXCESSIVE_ACTUATION_S,
    NORMAL_ACTUATION_S,
    Oscilloscope,
    PCBBiochip,
    PCBElectrode,
    default_params_for_size,
    nominal_capacitance,
    run_degradation_experiment,
)


class TestElectrode:
    def test_nominal_capacitance_scales_with_area(self):
        # 4 mm electrode has 4x the area (and capacitance) of a 2 mm one.
        assert nominal_capacitance(4) == pytest.approx(4 * nominal_capacitance(2))

    def test_nominal_capacitance_picofarad_scale(self):
        assert 5e-13 < nominal_capacitance(2) < 5e-11

    def test_actuation_accumulates_stress(self):
        e = PCBElectrode(size_mm=2, params=default_params_for_size(2))
        e.actuate(NORMAL_ACTUATION_S)
        e.actuate(NORMAL_ACTUATION_S)
        assert e.actuation_count == 2
        assert e.stress_seconds == pytest.approx(2.0)

    def test_excessive_actuation_amplifies_stress(self):
        e = PCBElectrode(size_mm=2, params=default_params_for_size(2))
        e.actuate(EXCESSIVE_ACTUATION_S)
        # 5 s of drive + residual-charge amplification beyond the onset.
        assert e.stress_seconds > EXCESSIVE_ACTUATION_S

    def test_capacitance_grows_linearly_with_stress(self):
        e = PCBElectrode(size_mm=3, params=default_params_for_size(3))
        c0 = e.true_capacitance
        e.actuate(NORMAL_ACTUATION_S)
        c1 = e.true_capacitance
        e.actuate(NORMAL_ACTUATION_S)
        c2 = e.true_capacitance
        assert c2 - c1 == pytest.approx(c1 - c0)
        assert c1 > c0

    def test_relative_force_decays_with_actuations(self):
        e = PCBElectrode(size_mm=2, params=default_params_for_size(2))
        assert e.relative_force() == pytest.approx(1.0)
        for _ in range(500):
            e.actuate(NORMAL_ACTUATION_S)
        assert e.relative_force() < 0.6

    def test_effective_voltage_screens_with_wear(self):
        e = PCBElectrode(size_mm=4, params=default_params_for_size(4))
        v0 = e.effective_voltage()
        for _ in range(300):
            e.actuate(NORMAL_ACTUATION_S)
        assert e.effective_voltage() < v0

    def test_invalid_duration_rejected(self):
        e = PCBElectrode(size_mm=2, params=default_params_for_size(2))
        with pytest.raises(ValueError):
            e.actuate(0.0)

    def test_unknown_size_rejected(self):
        with pytest.raises(ValueError):
            default_params_for_size(7)


class TestOscilloscope:
    def test_noise_free_measurement_recovers_capacitance(self, rng):
        scope = Oscilloscope(rng, noise_fraction=0.0)
        e = PCBElectrode(size_mm=3, params=default_params_for_size(3))
        m = scope.measure(e)
        assert m.capacitance_f == pytest.approx(e.true_capacitance, rel=1e-9)

    def test_noisy_measurement_close(self, rng):
        scope = Oscilloscope(rng, noise_fraction=0.01)
        e = PCBElectrode(size_mm=3, params=default_params_for_size(3))
        m = scope.measure(e)
        assert m.capacitance_f == pytest.approx(e.true_capacitance, rel=0.1)

    def test_negative_noise_rejected(self, rng):
        with pytest.raises(ValueError):
            Oscilloscope(rng, noise_fraction=-0.1)


class TestBiochip:
    def test_three_electrode_banks(self, rng):
        chip = PCBBiochip(rng, electrodes_per_size=4)
        assert set(chip.electrodes) == set(ELECTRODE_SIZES_MM)
        assert all(len(bank) == 4 for bank in chip.electrodes.values())

    def test_actuation_sequence_touches_every_electrode(self, rng):
        chip = PCBBiochip(rng, electrodes_per_size=2)
        chip.run_actuation_sequence(5)
        for bank in chip.electrodes.values():
            assert all(e.actuation_count == 5 for e in bank)

    def test_measure_bank_returns_one_per_electrode(self, rng):
        chip = PCBBiochip(rng, electrodes_per_size=3)
        assert len(chip.measure_bank(2)) == 3


class TestFig5Experiment:
    def test_capacitance_growth_is_linear(self, rng):
        curves = run_degradation_experiment(
            rng, total_actuations=400, measure_every=50, electrodes_per_size=4
        )
        for curve in curves.values():
            slope, r2 = fit_capacitance_slope(curve.actuations, curve.capacitance_f)
            assert slope > 0
            assert r2 > 0.95  # the Fig. 5 claim: linear growth

    def test_residual_charge_grows_faster(self, rng):
        normal = run_degradation_experiment(
            rng, duration_s=NORMAL_ACTUATION_S, total_actuations=300,
            measure_every=50, electrodes_per_size=3,
        )
        excessive = run_degradation_experiment(
            np.random.default_rng(7), duration_s=EXCESSIVE_ACTUATION_S,
            total_actuations=300, measure_every=50, electrodes_per_size=3,
        )
        for size in ELECTRODE_SIZES_MM:
            assert (
                excessive[size].capacitance_slope()
                > 3 * normal[size].capacitance_slope()
            )

    def test_force_decay_rate_matches_fitted_constants(self, rng):
        # Fig. 6: the measured force follows tau^(2n/c); the identifiable
        # decay rate must match the injected per-size constants.
        curves = run_degradation_experiment(
            rng, total_actuations=800, measure_every=50,
            electrodes_per_size=6, force_noise=0.01,
        )
        for size, curve in curves.items():
            tau, c = PAPER_FITTED_CONSTANTS[size]
            expected_rate = -2.0 * np.log(tau) / c
            rate, r2 = fit_decay_rate(curve.actuations, curve.relative_force)
            assert rate == pytest.approx(expected_rate, rel=0.1)
            assert r2 > 0.9

    def test_invalid_parameters_rejected(self, rng):
        with pytest.raises(ValueError):
            run_degradation_experiment(rng, total_actuations=0)
