"""Tests for the ASCII rendering helpers."""

from __future__ import annotations

import numpy as np

from repro.analysis.render import (
    render_actuation,
    render_degradation,
    render_health,
    render_route,
)
from repro.core.routing_job import RoutingJob
from repro.core.strategy import strategy_from_synthesis
from repro.core.synthesis import synthesize
from repro.geometry.rect import Rect


class TestHealthMap:
    def test_dimensions(self):
        health = np.full((6, 4), 3)
        out = render_health(health)
        lines = out.splitlines()
        assert len(lines) == 4
        assert all(len(line) == 6 for line in lines)

    def test_dead_cells_marked(self):
        health = np.full((4, 4), 3)
        health[1, 2] = 0
        out = render_health(health)
        assert "#" in out
        assert out.count("#") == 1

    def test_y_axis_points_north(self):
        health = np.full((3, 3), 3)
        health[0, 2] = 0  # cell (1, 3): top-left of the printout
        out = render_health(health)
        assert out.splitlines()[0][0] == "#"

    def test_droplet_overlay(self):
        health = np.full((6, 6), 3)
        out = render_health(health, droplets={0: Rect(2, 2, 3, 3)})
        assert out.count("A") == 4

    def test_droplet_letters_cycle(self):
        health = np.full((8, 4), 3)
        out = render_health(
            health, droplets={0: Rect(1, 1, 1, 1), 1: Rect(5, 1, 5, 1)}
        )
        assert "A" in out and "B" in out


class TestRoute:
    def test_route_reaches_goal(self):
        job = RoutingJob(Rect(2, 2, 4, 4), Rect(10, 8, 12, 10), Rect(1, 1, 14, 12))
        health = np.full((16, 14), 3)
        result = synthesize(job, health)
        strategy = strategy_from_synthesis(job, result)
        out = render_route(strategy, health)
        assert "S" in out and "G" in out and "o" in out

    def test_dead_cells_shown(self):
        job = RoutingJob(Rect(2, 2, 4, 4), Rect(10, 8, 12, 10), Rect(1, 1, 14, 12))
        health = np.full((16, 14), 3)
        health[14, 12] = 0  # outside the route, stays visible
        result = synthesize(job, health)
        strategy = strategy_from_synthesis(job, result)
        assert "#" in render_route(strategy, health)


class TestActuation:
    def test_stars_match_matrix(self):
        u = np.zeros((5, 3), dtype=int)
        u[1, 1] = 1
        u[4, 2] = 1
        out = render_actuation(u)
        assert out.count("*") == 2


class TestDegradation:
    def test_pristine_renders_light(self):
        out = render_degradation(np.ones((4, 4)))
        assert set(out.replace("\n", "")) == {" "}

    def test_dead_renders_dense(self):
        out = render_degradation(np.zeros((4, 4)))
        assert set(out.replace("\n", "")) == {"#"}

    def test_custom_buckets_validated(self):
        import pytest

        with pytest.raises(ValueError):
            render_degradation(np.ones((2, 2)), buckets="")
