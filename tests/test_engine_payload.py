"""Round-trip tests for the engine's wire formats (payloads and pickle).

The synthesis engine ships jobs to worker processes and strategies back as
compact payload dicts; the persistent store serializes the same payloads as
JSON.  Everything the scheduler consumes must survive those trips exactly.
"""

from __future__ import annotations

import json
import pickle

import numpy as np
import pytest

from repro.core.routing_job import RoutingJob, zone
from repro.core.strategy import (
    RoutingStrategy,
    job_from_payload,
    job_to_payload,
    strategy_from_synthesis,
)
from repro.core.synthesis import SynthesisResult, synthesize
from repro.engine.payload import warm_values_from_payload, warm_values_to_payload
from repro.geometry.rect import Rect
from repro.modelcheck.strategy import MemorylessStrategy

W, H = 30, 20


def job(start=Rect(2, 2, 5, 5), goal=Rect(20, 10, 23, 13)) -> RoutingJob:
    return RoutingJob(start, goal, zone(start, goal, W, H))


def full_health() -> np.ndarray:
    return np.full((W, H), 3)


def synthesized() -> SynthesisResult:
    return synthesize(job(), full_health())


class TestMemorylessStrategyPayload:
    def test_round_trip_preserves_decisions_and_values(self):
        policy = synthesized().strategy
        rebuilt = MemorylessStrategy.from_payload(policy.to_payload())
        assert rebuilt.decisions == policy.decisions
        assert rebuilt.values == policy.values
        assert rebuilt.initial_value == policy.initial_value

    def test_round_trip_survives_json(self):
        """The store writes payloads as JSON; Rect keys, label-string states
        and infinite values must all survive text form exactly."""
        policy = MemorylessStrategy(
            decisions={Rect(1, 1, 2, 2): "E1", "HAZARD": "hold"},
            values={Rect(1, 1, 2, 2): 3.25, "HAZARD": float("inf")},
            initial_value=3.25,
        )
        text = json.dumps(policy.to_payload())
        rebuilt = MemorylessStrategy.from_payload(json.loads(text))
        assert rebuilt == policy
        assert rebuilt.values["HAZARD"] == float("inf")

    def test_unencodable_state_rejected(self):
        policy = MemorylessStrategy(
            decisions={(1, 2): "E1"}, values={(1, 2): 0.0}, initial_value=0.0
        )
        with pytest.raises(TypeError):
            policy.to_payload()


class TestJobPayload:
    def test_round_trip_with_obstacles(self):
        original = job().with_obstacles((Rect(8, 8, 9, 9), Rect(1, 1, 2, 2)))
        rebuilt = job_from_payload(job_to_payload(original))
        assert rebuilt == original
        assert rebuilt.key() == original.key()


class TestRoutingStrategyPayload:
    def test_round_trip(self):
        strategy = strategy_from_synthesis(job(), synthesized())
        rebuilt = RoutingStrategy.from_payload(strategy.to_payload())
        assert rebuilt.job == strategy.job
        assert rebuilt.policy == strategy.policy
        assert rebuilt.expected_cycles == strategy.expected_cycles
        assert rebuilt.action(strategy.job.start) == strategy.action(
            strategy.job.start
        )

    def test_pickle_round_trip(self):
        strategy = strategy_from_synthesis(job(), synthesized())
        rebuilt = pickle.loads(pickle.dumps(strategy))
        assert rebuilt == strategy


class TestSynthesisResultPayload:
    def test_round_trip_drops_model(self):
        result = synthesized()
        assert result.model is not None
        rebuilt = SynthesisResult.from_payload(result.to_payload())
        assert rebuilt.model is None
        assert rebuilt.strategy == result.strategy
        assert rebuilt.expected_cycles == result.expected_cycles
        assert rebuilt.success_probability == result.success_probability
        assert rebuilt.construction_time == result.construction_time
        assert rebuilt.solve_time == result.solve_time

    def test_round_trip_without_strategy(self):
        health = full_health()
        health[12, :] = 0  # impassable wall
        result = synthesize(job(), health)
        assert result.strategy is None
        rebuilt = SynthesisResult.from_payload(result.to_payload())
        assert rebuilt.strategy is None
        assert rebuilt.expected_cycles == float("inf")

    def test_pickle_round_trip(self):
        result = synthesized()
        rebuilt = pickle.loads(pickle.dumps(result.to_payload()))
        assert SynthesisResult.from_payload(rebuilt).strategy == result.strategy


class TestWarmValuesPayload:
    def test_round_trip(self):
        values = synthesized().strategy.values
        rebuilt = warm_values_from_payload(warm_values_to_payload(values))
        assert rebuilt == values

    def test_none_passes_through(self):
        assert warm_values_to_payload(None) is None
        assert warm_values_from_payload(None) is None
